//! Integration tests for the event-driven energy integration path.
//!
//! The engine now integrates power exactly, piecewise over active-slot
//! transitions, and keeps the 1 Hz metered trace as a *streamed view*
//! that must stay bit-identical to the materialize-then-sample
//! reference. These tests pin that equivalence at three levels: random
//! traces (property + analytic error bound), whole engine runs (exact
//! vs metered agreement), and the checked-in fig18/fig19 artifacts
//! (byte-identical CSV regeneration).

use hhsim_core::energy::{measure_trace, PowerMeter, PowerTrace};
use hhsim_core::{figures, FigureData};

/// SplitMix64 — the workspace's stdlib-only PRNG idiom.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn random_trace(seed: u64, max_segments: usize) -> PowerTrace {
    let mut s = seed;
    let mut trace = PowerTrace::new();
    let n = 1 + (splitmix(&mut s) as usize % max_segments);
    for _ in 0..n {
        // Durations spanning sub-sample slivers to multi-minute plateaus.
        let d = 10f64.powf(unit(&mut s) * 4.0 - 2.0);
        let w = 40.0 + 200.0 * unit(&mut s);
        trace.push(d, w);
    }
    trace
}

#[test]
fn exact_integral_matches_segment_sum_and_meter_view_is_bitwise() {
    for seed in 0..200u64 {
        let trace = random_trace(seed, 64);
        let er = measure_trace(&trace);
        // Exact integration reproduces the segment sum bit-for-bit.
        assert_eq!(
            er.exact_energy_j.to_bits(),
            trace.exact_energy_j().to_bits(),
            "seed {seed}: exact integral"
        );
        // The streamed 1 Hz view is the meter, bit for bit.
        let reference = PowerMeter::default().measure(&trace);
        assert_eq!(er.meter, reference, "seed {seed}: 1 Hz view");
    }
}

#[test]
fn metered_energy_within_analytic_bound_of_exact() {
    // Midpoint sampling at interval h over k segments mis-prices at most
    // one interval per segment boundary plus the clamped tail:
    // |metered - exact| <= (k + 2) * h * w_max.
    for seed in 200..400u64 {
        let trace = random_trace(seed, 48);
        let er = measure_trace(&trace);
        let k = trace.segments().len() as f64;
        let w_max = trace
            .segments()
            .iter()
            .map(|&(_, w)| w)
            .fold(0.0f64, f64::max);
        let bound = (k + 2.0) * 1.0 * w_max;
        let metered = er.meter.energy_j();
        assert!(
            (metered - er.exact_energy_j).abs() <= bound,
            "seed {seed}: |{metered} - {}| > bound {bound}",
            er.exact_energy_j
        );
    }
}

#[test]
fn engine_exact_energy_tracks_metered_energy() {
    use hhsim_core::arch::presets;
    use hhsim_core::workloads::AppId;
    use hhsim_core::{simulate_with, SimCache, SimConfig};

    let cache = SimCache::new();
    for (app, machine) in [
        (AppId::WordCount, presets::atom_c2758()),
        (AppId::TeraSort, presets::xeon_e5_2420()),
    ] {
        let cfg = SimConfig::new(app, machine).faults(figures::fig19_faults(0.06, true));
        let m = simulate_with(&cfg, &cache);
        assert!(m.exact_energy_j > 0.0, "{app:?}: exact energy present");
        // Long cluster runs sample thousands of 1 Hz points, so the
        // views agree tightly; the exact value is the ground truth.
        let rel = (m.exact_energy_j - m.energy_j).abs() / m.exact_energy_j;
        assert!(
            rel < 0.02,
            "{app:?}: metered vs exact dynamic energy drift {rel}"
        );
    }
}

fn checked_in(id: &str) -> String {
    let path = format!("{}/../../results/{id}.csv", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn assert_regenerates_byte_identical(id: &str, generate: fn() -> FigureData) {
    let got = generate().to_csv();
    assert_eq!(
        got,
        checked_in(id),
        "{id}: regenerated CSV must be byte-identical to results/{id}.csv"
    );
}

/// The streamed meter view feeds `Measurement.energy_j` and everything
/// derived from it; these artifacts exercise the full cluster engine
/// (fig18: mixed rosters; fig19: faults + speculation) and must not
/// move by a single byte.
#[test]
fn fig18_csv_regenerates_byte_identical() {
    assert_regenerates_byte_identical("fig18", figures::fig18);
}

#[test]
fn fig19_csv_regenerates_byte_identical() {
    assert_regenerates_byte_identical("fig19", || {
        figures::fig19().expect("fig19 recovers from every injected fault")
    });
}
