//! Event-driven heterogeneous cluster engine.
//!
//! A [`Cluster`] is a list of first-class [`Node`]s — each with its own
//! core kind and slot count — on which a phase's tasks are placed by a
//! pluggable [`Placement`] policy. Task durations are derived from the
//! node a task actually lands on (a map task is slower on an Atom node
//! than on a Xeon node in the same cluster), which is what lets the
//! paper's §3.5 heterogeneity-aware scheduling run on the simulator
//! instead of only on analytic cost tables.
//!
//! Map (and reduce) tasks run in waves over the cluster's task slots; the
//! wave structure is what makes small HDFS blocks (many short tasks) and
//! very large blocks (few tasks, idle slots) both lose — §3.1.1. Tasks
//! get a deterministic ±8% duration jitter so stragglers lengthen the
//! last wave realistically.
//!
//! Every task records a structured [`TaskSpan`] (queued → launched →
//! finished, node id, slot id, wave); phases compose into a
//! [`ClusterTimeline`] that exports as Chrome-trace-viewer JSON and a
//! per-node utilization CSV, and feeds the energy model a per-node
//! active-slot step function.
//!
//! The homogeneous path (every node identical, [`FifoAnySlot`]
//! placement) is **bit-identical** to the flat `makespan()` slot-pool
//! model this engine replaced: same FIFO grant order, same per-task
//! jitter, same integer-nanosecond clock arithmetic.

use hhsim_arch::CoreKind;
use hhsim_des::{EventId, SimTime, Simulation};
use hhsim_energy::MetricKind;
use hhsim_faults::{AttemptOutcome, FaultStats, PhaseError, PhaseFaults, RecoveryPolicy};
pub use hhsim_hdfs::LocalityTier;
use hhsim_hdfs::{NodeId as HdfsNodeId, Topology};
use hhsim_sched::{paper_schedule, CostTable, JobClass};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::rc::Rc;

/// A batch of identically-shaped tasks to schedule on the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSet {
    /// Number of tasks.
    pub tasks: usize,
    /// Nominal duration of one task, seconds.
    pub task_seconds: f64,
    /// Per-task fixed overhead (launch, heartbeat), seconds.
    pub overhead_seconds: f64,
}

/// Deterministic per-task jitter factor in `[0.92, 1.08]`.
///
/// Public so out-of-crate oracles (the parity tests) can price tasks with
/// the exact durations the engine uses.
pub fn jitter(task_index: usize) -> f64 {
    // SplitMix-style scramble for a platform-independent pseudo-random.
    let mut x = task_index as u64 + 0x9e37_79b9;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let u = ((x >> 11) as f64) / ((1u64 << 53) as f64);
    0.92 + 0.16 * u
}

/// Deterministic per-attempt jitter: attempt 1 is exactly [`jitter`]
/// (no-fault parity); re-executions and speculative backups draw a fresh
/// factor from the same `[0.92, 1.08]` distribution.
pub fn attempt_jitter(task_index: usize, attempt: u32) -> f64 {
    let shift = u64::from(attempt.saturating_sub(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut x = (task_index as u64)
        .wrapping_add(shift)
        .wrapping_add(0x9e37_79b9);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let u = ((x >> 11) as f64) / ((1u64 << 53) as f64);
    0.92 + 0.16 * u
}

/// One machine of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Display name ("xeon0", "atom1", ...).
    pub name: String,
    /// Which side of the big/little divide this node is on.
    pub kind: CoreKind,
    /// Concurrent task slots on this node.
    pub slots: usize,
}

/// A set of first-class nodes tasks are placed on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// The nodes, in placement-preference order (node id = index).
    pub nodes: Vec<Node>,
}

impl Cluster {
    /// `nodes` identical machines of `kind` with `slots` slots each.
    ///
    /// # Panics
    ///
    /// Panics if the cluster would have zero slots.
    pub fn homogeneous(kind: CoreKind, nodes: usize, slots: usize) -> Self {
        assert!(nodes > 0 && slots > 0, "need at least one slot");
        let name = match kind {
            CoreKind::Big => "xeon",
            CoreKind::Little => "atom",
        };
        Cluster {
            nodes: (0..nodes)
                .map(|i| Node {
                    name: format!("{name}{i}"),
                    kind,
                    slots,
                })
                .collect(),
        }
    }

    /// A mixed cluster: `big` Xeon nodes (`big_slots` each) followed by
    /// `little` Atom nodes (`little_slots` each).
    ///
    /// # Panics
    ///
    /// Panics if the cluster would have zero slots.
    pub fn mixed(big: usize, big_slots: usize, little: usize, little_slots: usize) -> Self {
        let mut nodes = Vec::with_capacity(big + little);
        for i in 0..big {
            nodes.push(Node {
                name: format!("xeon{i}"),
                kind: CoreKind::Big,
                slots: big_slots,
            });
        }
        for i in 0..little {
            nodes.push(Node {
                name: format!("atom{i}"),
                kind: CoreKind::Little,
                slots: little_slots,
            });
        }
        let c = Cluster { nodes };
        assert!(c.total_slots() > 0, "need at least one slot");
        c
    }

    /// Slots across all nodes.
    pub fn total_slots(&self) -> usize {
        self.nodes.iter().map(|n| n.slots).sum()
    }

    /// Number of nodes of `kind`.
    pub fn count(&self, kind: CoreKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }
}

/// Nominal per-task timing on one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeTiming {
    /// Nominal duration of one task on this node, seconds.
    pub task_seconds: f64,
    /// Per-task fixed overhead on this node, seconds.
    pub overhead_seconds: f64,
}

/// Per-task input-locality context for a phase: where each task's input
/// replicas live and what reading at each [`LocalityTier`] costs.
///
/// Node → rack assignment is round-robin (`node % racks`), matching
/// [`hhsim_hdfs::Topology`]. A phase without locality context (`None`
/// on [`PhaseLoad::locality`]) runs the exact legacy code path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseLocality {
    /// Replica-holder node ids per task (indexed by task). Tasks past
    /// the end of this list are treated as having no replicas (always
    /// off-rack when placed anywhere).
    pub replicas: Vec<Vec<usize>>,
    /// Number of racks in the fabric (≥ 1).
    pub racks: usize,
    /// Extra input-read seconds by tier, indexed
    /// `[node-local, rack-local, off-rack]`. Added un-jittered to the
    /// task duration on launch.
    pub read_seconds: [f64; 3],
}

impl PhaseLocality {
    /// Locality tier `task` sees when its attempt runs on `node`.
    pub fn tier_of(&self, task: usize, node: usize) -> LocalityTier {
        let Some(reps) = self.replicas.get(task) else {
            return LocalityTier::OffRack;
        };
        if reps.contains(&node) {
            return LocalityTier::NodeLocal;
        }
        let racks = self.racks.max(1);
        if reps.iter().any(|&r| r % racks == node % racks) {
            return LocalityTier::RackLocal;
        }
        LocalityTier::OffRack
    }
}

/// A phase's work: `tasks` tasks plus the per-node timing they would see.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseLoad {
    /// Number of tasks to drain.
    pub tasks: usize,
    /// Timing per node (indexed by node id; length must match the
    /// cluster).
    pub timing: Vec<NodeTiming>,
    /// Input-locality context, if the phase reads placed block replicas.
    /// `None` (the default) keeps the engine on its legacy path.
    pub locality: Option<PhaseLocality>,
    /// Extra seconds per task (indexed by task; missing entries are
    /// zero), added un-jittered to each attempt — e.g. a reduce task's
    /// contended shuffle-fetch time. Empty (the default) keeps the
    /// engine on its legacy path.
    pub extra_seconds: Vec<f64>,
}

impl PhaseLoad {
    /// Every node sees the same timing — the homogeneous case.
    pub fn uniform(set: &TaskSet, cluster: &Cluster) -> Self {
        PhaseLoad {
            tasks: set.tasks,
            timing: vec![
                NodeTiming {
                    task_seconds: set.task_seconds,
                    overhead_seconds: set.overhead_seconds,
                };
                cluster.nodes.len()
            ],
            locality: None,
            extra_seconds: Vec::new(),
        }
    }

    /// Timing chosen per node kind — the heterogeneous case.
    pub fn by_kind(tasks: usize, big: NodeTiming, little: NodeTiming, cluster: &Cluster) -> Self {
        PhaseLoad {
            tasks,
            timing: cluster
                .nodes
                .iter()
                .map(|n| match n.kind {
                    CoreKind::Big => big,
                    CoreKind::Little => little,
                })
                .collect(),
            locality: None,
            extra_seconds: Vec::new(),
        }
    }

    /// Attaches input-locality context (builder style).
    #[must_use]
    pub fn with_locality(mut self, locality: PhaseLocality) -> Self {
        self.locality = Some(locality);
        self
    }

    /// Attaches per-task extra seconds (builder style).
    #[must_use]
    pub fn with_extra_seconds(mut self, extra: Vec<f64>) -> Self {
        self.extra_seconds = extra;
        self
    }

    /// Locality tier `task` would see running on `node` (node-local
    /// when the phase has no locality context).
    pub fn tier_for(&self, task: usize, node: usize) -> LocalityTier {
        match &self.locality {
            None => LocalityTier::NodeLocal,
            Some(l) => l.tier_of(task, node),
        }
    }

    /// Un-jittered extra seconds charged to `task` at `tier`: the
    /// tier's input-read time plus the task's own extra entry. Exactly
    /// `0.0` on the legacy path, so adding it to a duration is bitwise
    /// invisible there.
    fn extra_for(&self, task: usize, tier: LocalityTier) -> f64 {
        let read = self
            .locality
            .as_ref()
            .and_then(|l| l.read_seconds.get(tier.idx()).copied())
            .unwrap_or(0.0);
        read + self.extra_seconds.get(task).copied().unwrap_or(0.0)
    }
}

thread_local! {
    /// Bitmap words examined by [`FreeSlots`] placement queries on this
    /// thread. Pure diagnostics for the scale regression tests — never
    /// feeds simulation state.
    static PLACEMENT_PROBES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Bitmap words examined by placement queries on this thread since the
/// last [`reset_placement_probes`]. The scale regression tests use this
/// to pin the engine's amortized-O(1) node lookup: a 10k-node run must
/// not degrade to per-event linear scans when nodes die or get
/// blacklisted.
pub fn placement_probes() -> u64 {
    PLACEMENT_PROBES.with(|p| p.get())
}

/// Zeroes this thread's [`placement_probes`] counter.
pub fn reset_placement_probes() {
    PLACEMENT_PROBES.with(|p| p.set(0));
}

fn count_probes(words: u64) {
    PLACEMENT_PROBES.with(|p| p.set(p.get() + words));
}

/// Two-level bitmap over node ids: `words` holds one bit per node,
/// `summary` one bit per (non-zero) word. Find-first-set is two word
/// scans — amortized O(1) at 10k nodes — and always returns the *lowest*
/// set index, which is what keeps placement decisions byte-identical to
/// the linear scans this structure replaced.
#[derive(Debug, Clone, Default)]
struct NodeBitmap {
    words: Vec<u64>,
    summary: Vec<u64>,
}

impl NodeBitmap {
    fn new(nodes: usize) -> Self {
        let nw = nodes.div_ceil(64);
        NodeBitmap {
            words: vec![0; nw],
            summary: vec![0; nw.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        let w = i / 64;
        if let Some(word) = self.words.get_mut(w) {
            *word |= 1u64 << (i % 64);
        }
        if let Some(s) = self.summary.get_mut(w / 64) {
            *s |= 1u64 << (w % 64);
        }
    }

    fn clear(&mut self, i: usize) {
        let w = i / 64;
        let Some(word) = self.words.get_mut(w) else {
            return;
        };
        *word &= !(1u64 << (i % 64));
        if *word == 0 {
            if let Some(s) = self.summary.get_mut(w / 64) {
                *s &= !(1u64 << (w % 64));
            }
        }
    }

    /// Lowest set index, if any.
    fn first(&self) -> Option<usize> {
        for (si, &s) in self.summary.iter().enumerate() {
            count_probes(1);
            if s == 0 {
                continue;
            }
            let w = si * 64 + s.trailing_zeros() as usize;
            count_probes(1);
            let word = self.words.get(w).copied().unwrap_or(0);
            if word == 0 {
                return None; // unreachable: summary bit implies a set word
            }
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
        None
    }

    /// Ascending iterator over set indices.
    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        count_probes(self.words.len() as u64);
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(w * 64 + b)
            })
        })
    }
}

/// Amortized-O(1) free-slot index over the cluster's nodes: per-node
/// free counts plus ready-node bitmaps (overall and per core kind) that
/// track exactly the nodes placement may choose — usable (alive, not
/// blacklisted) with at least one free slot.
///
/// Placement policies query this instead of scanning a free-count slice;
/// every query returns the same node the old linear scan returned (the
/// lowest-id match), so spans and artifacts stay byte-identical while a
/// 10k-node dispatch drops from O(nodes) to O(1) per event.
#[derive(Debug, Clone)]
pub struct FreeSlots {
    free: Vec<usize>,
    alive: Vec<bool>,
    usable: Vec<bool>,
    any: NodeBitmap,
    big: NodeBitmap,
    little: NodeBitmap,
    kind_of: Vec<CoreKind>,
    /// Free slots summed over usable nodes.
    free_total: usize,
    /// Nodes currently usable.
    usable_nodes: usize,
}

impl FreeSlots {
    /// All nodes alive and usable (the fault-free engine).
    fn new(cluster: &Cluster) -> Self {
        Self::with_dead(cluster, None)
    }

    /// `dead[n]` nodes start dead: zero free slots, never usable.
    fn with_dead(cluster: &Cluster, dead: Option<&[bool]>) -> Self {
        let n = cluster.nodes.len();
        let mut fs = FreeSlots {
            free: vec![0; n],
            alive: vec![true; n],
            usable: vec![true; n],
            any: NodeBitmap::new(n),
            big: NodeBitmap::new(n),
            little: NodeBitmap::new(n),
            kind_of: cluster.nodes.iter().map(|nd| nd.kind).collect(),
            free_total: 0,
            usable_nodes: n,
        };
        for (i, nd) in cluster.nodes.iter().enumerate() {
            if dead.and_then(|d| d.get(i)).copied().unwrap_or(false) {
                if let Some(a) = fs.alive.get_mut(i) {
                    *a = false;
                }
                if let Some(u) = fs.usable.get_mut(i) {
                    *u = false;
                }
                fs.usable_nodes -= 1;
                continue;
            }
            if let Some(f) = fs.free.get_mut(i) {
                *f = nd.slots;
            }
            fs.free_total += nd.slots;
            if nd.slots > 0 {
                fs.set_ready(i);
            }
        }
        fs
    }

    fn set_ready(&mut self, node: usize) {
        self.any.set(node);
        match self.kind_of.get(node) {
            Some(CoreKind::Big) => self.big.set(node),
            Some(CoreKind::Little) => self.little.set(node),
            None => {}
        }
    }

    fn clear_ready(&mut self, node: usize) {
        self.any.clear(node);
        match self.kind_of.get(node) {
            Some(CoreKind::Big) => self.big.clear(node),
            Some(CoreKind::Little) => self.little.clear(node),
            None => {}
        }
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.free.len()
    }

    /// Free slots on `node` (0 for dead nodes).
    pub fn free(&self, node: usize) -> usize {
        self.free.get(node).copied().unwrap_or(0)
    }

    /// True if `node` may receive new attempts (alive, not blacklisted).
    pub fn usable(&self, node: usize) -> bool {
        self.usable.get(node).copied().unwrap_or(false)
    }

    /// Free slots summed over usable nodes; zero means dispatch must wait.
    pub fn total_free(&self) -> usize {
        self.free_total
    }

    /// Lowest-id usable node with a free slot.
    pub fn first_free(&self) -> Option<usize> {
        self.any.first()
    }

    /// Lowest-id usable node of `kind` with a free slot.
    pub fn first_free_of(&self, kind: CoreKind) -> Option<usize> {
        match kind {
            CoreKind::Big => self.big.first(),
            CoreKind::Little => self.little.first(),
        }
    }

    /// Ascending iterator over usable nodes with a free slot.
    pub fn free_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.any.iter()
    }

    /// True if any node other than `node` can still accept attempts.
    fn usable_other_than(&self, node: usize) -> bool {
        self.usable_nodes > 1 || (self.usable_nodes == 1 && !self.usable(node))
    }

    fn alive(&self, node: usize) -> bool {
        self.alive.get(node).copied().unwrap_or(false)
    }

    /// Takes one free slot on a usable `node`.
    fn claim(&mut self, node: usize) {
        let Some(f) = self.free.get_mut(node) else {
            return;
        };
        *f -= 1;
        self.free_total -= 1;
        if *f == 0 {
            self.clear_ready(node);
        }
    }

    /// Returns a slot to `node`'s pool (no-op on a crashed node: its
    /// pool is zeroed forever).
    fn release(&mut self, node: usize) {
        if !self.alive(node) {
            return;
        }
        let Some(f) = self.free.get_mut(node) else {
            return;
        };
        *f += 1;
        let became_ready = *f == 1;
        if self.usable(node) {
            self.free_total += 1;
            if became_ready {
                self.set_ready(node);
            }
        }
    }

    /// Masks `node` from placement (blacklisting): its free slots stay
    /// physically free but stop counting or matching.
    fn set_unusable(&mut self, node: usize) {
        if !self.usable(node) {
            return;
        }
        if let Some(u) = self.usable.get_mut(node) {
            *u = false;
        }
        self.usable_nodes -= 1;
        self.free_total -= self.free(node);
        self.clear_ready(node);
    }

    /// Kills `node` (crash): unusable and zero slots for the rest of the
    /// run.
    fn kill(&mut self, node: usize) {
        self.set_unusable(node);
        if let Some(a) = self.alive.get_mut(node) {
            *a = false;
        }
        if let Some(f) = self.free.get_mut(node) {
            *f = 0;
        }
    }
}

/// Per-node slot-occupancy bitmaps (bit set = slot free), flattened into
/// one word array. Claiming always takes the lowest free slot — the same
/// slot the old per-slot boolean scan picked — in O(1) for clusters with
/// up to 64 slots per node.
#[derive(Debug, Clone)]
struct SlotTable {
    words: Vec<u64>,
    /// Word range of node `n` is `offset[n]..offset[n + 1]`.
    offset: Vec<usize>,
}

impl SlotTable {
    fn new(cluster: &Cluster) -> Self {
        let mut offset = Vec::with_capacity(cluster.nodes.len() + 1);
        offset.push(0);
        let mut total = 0usize;
        for n in &cluster.nodes {
            total += n.slots.div_ceil(64);
            offset.push(total);
        }
        let mut words = vec![0u64; total];
        for (i, n) in cluster.nodes.iter().enumerate() {
            let base = offset.get(i).copied().unwrap_or(0);
            let mut left = n.slots;
            let mut w = base;
            while left > 0 {
                let bits = left.min(64);
                if let Some(word) = words.get_mut(w) {
                    *word = if bits == 64 {
                        u64::MAX
                    } else {
                        (1u64 << bits) - 1
                    };
                }
                left -= bits;
                w += 1;
            }
        }
        SlotTable { words, offset }
    }

    /// Claims the lowest free slot on `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node has no free slot (engine invariant: callers
    /// check the free count first).
    fn claim_first(&mut self, node: usize) -> usize {
        let lo = self.offset.get(node).copied().unwrap_or(0);
        let hi = self.offset.get(node + 1).copied().unwrap_or(lo);
        for w in lo..hi {
            let Some(word) = self.words.get_mut(w) else {
                break;
            };
            if *word == 0 {
                continue;
            }
            let bit = word.trailing_zeros() as usize;
            *word &= !(1u64 << bit);
            return (w - lo) * 64 + bit;
        }
        unreachable!("free slot exists on chosen node");
    }

    /// Marks `slot` on `node` free again.
    fn release(&mut self, node: usize, slot: usize) {
        let lo = self.offset.get(node).copied().unwrap_or(0);
        if let Some(word) = self.words.get_mut(lo + slot / 64) {
            *word |= 1u64 << (slot % 64);
        }
    }
}

/// Chooses the node for the task at the head of the FIFO queue.
///
/// The engine is work-conserving: `place` is only called when at least
/// one slot is free, and must return a usable node with a free slot.
pub trait Placement {
    /// Node id for `task`; `free` indexes the cluster's ready nodes.
    fn place(&mut self, task: usize, cluster: &Cluster, free: &FreeSlots) -> usize;

    /// Policy label for traces and reports.
    fn name(&self) -> &'static str;

    /// Locality-aware placement: with locality context, prefer a free
    /// slot on a node holding `task`'s input (node-local), then any free
    /// slot in a replica's rack (rack-local), and only then fall back to
    /// the policy's own [`place`](Placement::place) choice, classified
    /// against the replica set. Without context this *is* `place` (the
    /// legacy path, byte-identical).
    ///
    /// Provided once for every policy so the delay-scheduling preference
    /// order (node → rack → anywhere) stays consistent across policies.
    fn place_local(
        &mut self,
        task: usize,
        cluster: &Cluster,
        free: &FreeSlots,
        locality: Option<&PhaseLocality>,
    ) -> (usize, LocalityTier) {
        let Some(loc) = locality else {
            return (self.place(task, cluster, free), LocalityTier::NodeLocal);
        };
        let nodes = cluster.nodes.len();
        if let Some(reps) = loc.replicas.get(task) {
            // 1. A free slot on a replica holder: node-local.
            for &n in reps {
                if n < nodes && free.usable(n) && free.free(n) > 0 {
                    return (n, LocalityTier::NodeLocal);
                }
            }
            // 2. A free slot in a replica's rack: rack-local. Racks are
            // round-robin (node % racks), so a rack is a stride range.
            let racks = loc.racks.max(1);
            if racks > 1 {
                let mut seen: Vec<usize> = Vec::with_capacity(reps.len());
                for &r in reps {
                    let rack = r % racks;
                    if seen.contains(&rack) {
                        continue;
                    }
                    seen.push(rack);
                    for n in (rack..nodes).step_by(racks) {
                        if free.usable(n) && free.free(n) > 0 {
                            return (n, LocalityTier::RackLocal);
                        }
                    }
                }
            }
        }
        // 3. Anywhere the policy likes; classify what we got.
        let n = self.place(task, cluster, free);
        (n, loc.tier_of(task, n))
    }
}

/// Baseline: first node with a free slot, in node-id order. On a
/// homogeneous cluster this reproduces the flat slot-pool model exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoAnySlot;

impl Placement for FifoAnySlot {
    fn place(&mut self, _task: usize, _cluster: &Cluster, free: &FreeSlots) -> usize {
        free.first_free().expect("a slot is free")
    }

    fn name(&self) -> &'static str {
        "fifo-any"
    }
}

/// Heterogeneity-aware placement: prefer free slots on the node kind the
/// paper's scheduler allocates for the job, spill onto the other kind
/// only when the preferred kind is saturated (work-conserving, so adding
/// a node can never slow a phase down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindPreferring {
    /// The node kind tasks should land on first.
    pub preferred: CoreKind,
}

impl KindPreferring {
    /// The paper's §3.5 pseudo-code: compute-bound → little, I/O-bound →
    /// big, hybrid by goal ([`paper_schedule`]).
    pub fn for_class(class: JobClass, goal: MetricKind) -> Self {
        KindPreferring {
            preferred: paper_schedule(class, goal).kind,
        }
    }

    /// Characterization-driven: the kind of [`CostTable::optimal`] under
    /// `goal` (falls back to big on an empty table).
    pub fn from_cost_table(table: &CostTable, goal: MetricKind) -> Self {
        KindPreferring {
            preferred: table
                .optimal(goal)
                .map(|(a, _)| a.kind)
                .unwrap_or(CoreKind::Big),
        }
    }
}

impl Placement for KindPreferring {
    fn place(&mut self, _task: usize, _cluster: &Cluster, free: &FreeSlots) -> usize {
        free.first_free_of(self.preferred)
            .or_else(|| free.first_free())
            .expect("a slot is free")
    }

    fn name(&self) -> &'static str {
        match self.preferred {
            CoreKind::Big => "prefer-big",
            CoreKind::Little => "prefer-little",
        }
    }
}

/// Slot admission counters of one engine run (the cluster-level analogue
/// of [`hhsim_des::PoolStats`]), surfaced through `Measurement` so
/// figures can report slot utilization and queueing delay per phase.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotStats {
    /// Total slots across the cluster.
    pub capacity: usize,
    /// Largest number of slots simultaneously busy.
    pub peak_in_use: usize,
    /// Cumulative seconds tasks spent waiting for a slot.
    pub total_wait_s: f64,
    /// Tasks that had to wait (launched after the phase start).
    pub tasks_queued: u64,
    /// Longest the pending queue ever got.
    pub max_queue_len: usize,
}

impl SlotStats {
    /// Folds another phase's counters into this one (chained jobs).
    pub fn absorb(&mut self, other: &SlotStats) {
        self.capacity = self.capacity.max(other.capacity);
        self.peak_in_use = self.peak_in_use.max(other.peak_in_use);
        self.total_wait_s += other.total_wait_s;
        self.tasks_queued += other.tasks_queued;
        self.max_queue_len = self.max_queue_len.max(other.max_queue_len);
    }

    /// Mean queueing delay per task that waited, seconds.
    pub fn mean_wait_s(&self) -> f64 {
        if self.tasks_queued == 0 {
            0.0
        } else {
            self.total_wait_s / self.tasks_queued as f64
        }
    }
}

/// One task's structured trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// Phase label ("map", "reduce", possibly suffixed per chained job).
    pub phase: String,
    /// Task index within its phase.
    pub task: usize,
    /// Node the task ran on.
    pub node: usize,
    /// Slot within the node.
    pub slot: usize,
    /// 1-based count of tasks this slot has run (wave number).
    pub wave: usize,
    /// When the task entered the queue, seconds.
    pub queued_s: f64,
    /// When it got a slot, seconds.
    pub launched_s: f64,
    /// When it finished, seconds.
    pub finished_s: f64,
    /// 1-based attempt number (> 1 only for re-executions and
    /// speculative backups under fault injection).
    #[serde(default)]
    pub attempt: u32,
    /// How this attempt ended. Spans in [`PhaseRun::spans`] are always
    /// [`AttemptOutcome::Success`]; wasted attempts live in
    /// [`PhaseRun::wasted`].
    #[serde(default)]
    pub outcome: AttemptOutcome,
    /// Input locality of this attempt's landing node
    /// ([`LocalityTier::NodeLocal`] on phases without locality context).
    #[serde(default)]
    pub tier: LocalityTier,
}

/// Result of draining one [`PhaseLoad`] through the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRun {
    /// Wall-clock seconds from phase start to last task completion.
    pub makespan_s: f64,
    /// Per-task spans, in task order, with phase-relative times and an
    /// empty phase label (filled in by [`ClusterTimeline::extend`]).
    /// One winning attempt per task.
    pub spans: Vec<TaskSpan>,
    /// Slot admission counters.
    pub slots: SlotStats,
    /// Attempts that occupied a slot without winning their task (failed,
    /// killed by a node crash, or cancelled speculative losers), in
    /// completion order. Empty without fault injection. These feed the
    /// timeline so the energy model charges wasted work.
    pub wasted: Vec<TaskSpan>,
    /// Completed map tasks re-executed during this (reduce) phase after
    /// a fetch failure, in completion order: `task` is the *map* task
    /// id, `outcome` is [`AttemptOutcome::Recovered`] and `tier` is the
    /// surviving-replica locality the re-run landed on. Empty without a
    /// [`FetchPlan`]. These feed the timeline so the energy model
    /// charges recovery work.
    pub recovered: Vec<TaskSpan>,
    /// Phase-relative `(seconds, label)` annotations for domain events
    /// that are not task spans: `"rack-crash:<r>"` when a whole rack
    /// went down, `"rack-blacklisted:<r>"` when blacklisting escalated
    /// to rack granularity. Empty without active failure domains.
    pub annotations: Vec<(f64, String)>,
    /// Fault and recovery counters (all zero without fault injection).
    pub faults: FaultStats,
}

/// Mutable state shared between the completion events of one run.
#[derive(Debug)]
struct EngineState {
    slots: FreeSlots,
    slot_table: SlotTable,
    slot_waves: Vec<Vec<usize>>,
    queue: VecDeque<usize>,
    in_use: usize,
    max_finish: SimTime,
    stats: SlotStats,
}

/// Drains `load` over `cluster` under `placement`, recording a span per
/// task. All tasks are queued at phase start (time zero) in task order;
/// a freed slot always goes to the head of the queue (FIFO admission,
/// placement only chooses *which* free slot).
///
/// # Panics
///
/// Panics if the cluster has no slots or `load.timing` does not match
/// the cluster's node count.
pub fn run_phase(cluster: &Cluster, load: &PhaseLoad, placement: &mut dyn Placement) -> PhaseRun {
    let capacity = cluster.total_slots();
    assert!(capacity > 0, "need at least one slot");
    assert_eq!(
        load.timing.len(),
        cluster.nodes.len(),
        "one timing entry per node"
    );
    let mut stats = SlotStats {
        capacity,
        ..SlotStats::default()
    };
    if load.tasks == 0 {
        return PhaseRun {
            makespan_s: 0.0,
            spans: Vec::new(),
            slots: stats,
            wasted: Vec::new(),
            recovered: Vec::new(),
            annotations: Vec::new(),
            faults: FaultStats::default(),
        };
    }

    let mut sim = Simulation::new();
    let mut spans: Vec<Option<TaskSpan>> = vec![None; load.tasks];
    stats.max_queue_len = load.tasks.saturating_sub(capacity);
    let state = Rc::new(RefCell::new(EngineState {
        slots: FreeSlots::new(cluster),
        slot_table: SlotTable::new(cluster),
        slot_waves: cluster.nodes.iter().map(|n| vec![0; n.slots]).collect(),
        queue: (0..load.tasks).collect(),
        in_use: 0,
        max_finish: SimTime::ZERO,
        stats,
    }));

    // Launches queued tasks while slots are free. Runs synchronously at
    // phase start and again after every completion event, so grant order
    // is FIFO at identical virtual times — exactly the slot-pool
    // semantics of the flat model this engine replaced.
    let dispatch = |sim: &mut Simulation,
                    state: &Rc<RefCell<EngineState>>,
                    placement: &mut dyn Placement,
                    spans: &mut Vec<Option<TaskSpan>>| {
        loop {
            let task = {
                let st = state.borrow();
                if st.queue.is_empty() || st.slots.total_free() == 0 {
                    break;
                }
                *st.queue.front().expect("non-empty queue")
            };
            let (node, tier) =
                placement.place_local(task, cluster, &state.borrow().slots, load.locality.as_ref());
            let now = sim.now();
            let (slot, wave, dur) = {
                let mut st = state.borrow_mut();
                assert!(st.slots.free(node) > 0, "placement chose a busy node");
                st.queue.pop_front();
                st.slots.claim(node);
                st.in_use += 1;
                let in_use = st.in_use;
                st.stats.peak_in_use = st.stats.peak_in_use.max(in_use);
                let slot = st.slot_table.claim_first(node);
                let wave = match st.slot_waves.get_mut(node).and_then(|w| w.get_mut(slot)) {
                    Some(w) => {
                        *w += 1;
                        *w
                    }
                    None => 0, // unreachable: slot ids come from the slot table
                };
                if !now.is_zero() {
                    st.stats.tasks_queued += 1;
                    st.stats.total_wait_s += now.as_secs_f64();
                }
                let t = &load.timing[node];
                let dur = SimTime::from_secs_f64(
                    t.task_seconds * jitter(task) + t.overhead_seconds + load.extra_for(task, tier),
                );
                (slot, wave, dur)
            };
            let finish = now + dur;
            spans[task] = Some(TaskSpan {
                phase: String::new(),
                task,
                node,
                slot,
                wave,
                queued_s: 0.0,
                launched_s: now.as_secs_f64(),
                finished_s: finish.as_secs_f64(),
                attempt: 1,
                outcome: AttemptOutcome::Success,
                tier,
            });
            let state = state.clone();
            sim.schedule_in(dur, move |sim| {
                let mut st = state.borrow_mut();
                st.slots.release(node);
                st.in_use -= 1;
                st.slot_table.release(node, slot);
                if sim.now() > st.max_finish {
                    st.max_finish = sim.now();
                }
            });
        }
    };

    dispatch(&mut sim, &state, placement, &mut spans);
    // Drive the calendar one event at a time so the placement policy
    // (a &mut borrow that cannot move into event closures) runs between
    // events; `Simulation::run()`'s final clock is the last completion.
    while sim.step() {
        dispatch(&mut sim, &state, placement, &mut spans);
    }

    let st = Rc::try_unwrap(state)
        .expect("all completion events have run")
        .into_inner();
    PhaseRun {
        makespan_s: st.max_finish.as_secs_f64(),
        spans: spans
            .into_iter()
            .map(|s| s.expect("every task was launched"))
            .collect(),
        slots: st.stats,
        wasted: Vec::new(),
        recovered: Vec::new(),
        annotations: Vec::new(),
        faults: FaultStats::default(),
    }
}

/// Flat wall-clock of a homogeneous phase — the engine's answer to the
/// old `makespan(set, slots)` question (same FIFO waves, same jitter).
pub fn homogeneous_makespan(set: &TaskSet, nodes: usize, slots: usize, kind: CoreKind) -> f64 {
    let cluster = Cluster::homogeneous(kind, nodes, slots);
    run_phase(
        &cluster,
        &PhaseLoad::uniform(set, &cluster),
        &mut FifoAnySlot,
    )
    .makespan_s
}

/// A task waiting for a slot, remembering when it (re-)entered the queue.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    task: usize,
    queued: SimTime,
}

/// An attempt currently occupying a slot in the fault-aware engine.
#[derive(Debug, Clone, Copy)]
struct RunningAttempt {
    attempt: u32,
    node: usize,
    slot: usize,
    wave: usize,
    queued: SimTime,
    launched: SimTime,
    /// Full would-be runtime on its node (failure truncates it).
    duration: SimTime,
    /// Progress rate estimate: 1 / full runtime in seconds.
    rate: f64,
    /// The pending failure-or-completion calendar event.
    event: EventId,
    speculative: bool,
    /// Input locality of this attempt's landing node.
    tier: LocalityTier,
}

/// Map-output availability context for a reduce phase, enabling
/// Hadoop's fetch-failure semantics: when a node dies after its map
/// tasks completed, those outputs are lost, in-flight reduce attempts
/// register fetch failures, and the engine re-executes the lost maps on
/// surviving nodes — re-querying the surviving replica set (via
/// [`Topology::surviving_tier`]) so the re-run is priced at the correct
/// locality tier. A map whose every input replica is gone fails the
/// phase with [`PhaseError::DataLost`].
#[derive(Debug, Clone, PartialEq)]
pub struct FetchPlan {
    /// Node that holds each completed map task's output (indexed by map
    /// task), i.e. the map phase's winning span nodes.
    pub holders: Vec<usize>,
    /// Input-block replica holders per map task — the NameNode's answer
    /// a re-execution consults after filtering to surviving nodes.
    pub map_replicas: Vec<Vec<usize>>,
    /// The fabric replicas were placed against, answering
    /// surviving-replica locality queries for re-executed maps.
    pub topology: Topology,
    /// Extra input-read seconds by tier for a re-executed map, indexed
    /// `[node-local, rack-local, off-rack]`.
    pub read_seconds: [f64; 3],
    /// Per-node map-task timing (a re-executed map runs at map speed,
    /// not the surrounding reduce phase's).
    pub map_timing: Vec<NodeTiming>,
}

/// Live fetch-failure recovery state inside one engine run.
#[derive(Debug)]
struct FetchCtx {
    /// Current holder of each map output (updated as re-runs land).
    holders: Vec<usize>,
    replicas: Vec<Vec<usize>>,
    topology: Topology,
    read_seconds: [f64; 3],
    map_timing: Vec<NodeTiming>,
    /// Synthetic engine task id per lost map (`usize::MAX` = never
    /// lost). Ids live past `base_tasks` so per-task recovery vectors
    /// never collide with reduce task ids.
    engine_of: Vec<usize>,
    /// Engine id − `base_tasks` → map task id.
    reexec_map: Vec<usize>,
    /// Lost maps awaiting a slot (`task` holds the *map* id).
    queue: VecDeque<QueueEntry>,
    /// Maps currently being re-executed.
    recovering: Vec<bool>,
    /// Lost-map re-executions not yet landed; reduces are gated while
    /// this is non-zero (the shuffle barrier stalls on missing inputs).
    outstanding: usize,
    /// Fetch-failed reduce tasks parked until recovery completes.
    gated: Vec<QueueEntry>,
}

/// Shared state of one fault-aware engine run.
#[derive(Debug)]
struct FaultState {
    // Slot bookkeeping (mirrors the fault-free `EngineState`). `slots`
    // also carries node health: dead and blacklisted nodes are unusable.
    slots: FreeSlots,
    slot_table: SlotTable,
    slot_waves: Vec<Vec<usize>>,
    queue: VecDeque<QueueEntry>,
    in_use: usize,
    max_finish: SimTime,
    stats: SlotStats,
    node_failures: Vec<u32>,
    // Per-task recovery state.
    running: Vec<Vec<RunningAttempt>>,
    /// Tasks with at least one attempt in flight (unordered dense set,
    /// `running_pos` is the index of each member). Keeps the LATE
    /// speculation scan and node-crash cleanup proportional to the
    /// in-flight count — bounded by cluster capacity — instead of the
    /// total task count.
    running_tasks: Vec<usize>,
    running_pos: Vec<usize>,
    failed: Vec<u32>,
    next_attempt: Vec<u32>,
    done: Vec<bool>,
    speculated: Vec<bool>,
    /// In the queue or in a backoff window (neither running nor done).
    waiting: Vec<bool>,
    pending: usize,
    // LATE progress-rate statistics over every attempt launched so far.
    rate_sum: f64,
    rate_count: u64,
    // Outputs.
    spans: Vec<Option<TaskSpan>>,
    wasted: Vec<TaskSpan>,
    fstats: FaultStats,
    policy: RecoveryPolicy,
    error: Option<PhaseError>,
    // Failure-domain state (inert when `racks == 0`).
    /// Number of real (non-synthetic) tasks; engine ids at or past this
    /// are re-executed maps.
    base_tasks: usize,
    /// Rack count of the failure-domain config (0 = no domains).
    racks: usize,
    /// Individually-blacklisted nodes per rack, driving the escalation
    /// to rack-granularity blacklisting.
    rack_blacklist_count: Vec<u32>,
    rack_blacklisted: Vec<bool>,
    annotations: Vec<(f64, String)>,
    recovered: Vec<TaskSpan>,
    fetch: Option<FetchCtx>,
}

/// Sentinel for "task not in the in-flight set".
const NOT_RUNNING: usize = usize::MAX;

impl FaultState {
    /// Marks the first idle slot on `node` busy; returns `(slot, wave)`.
    fn claim_slot(&mut self, node: usize) -> (usize, usize) {
        self.slots.claim(node);
        self.in_use += 1;
        let in_use = self.in_use;
        self.stats.peak_in_use = self.stats.peak_in_use.max(in_use);
        let slot = self.slot_table.claim_first(node);
        match self.slot_waves.get_mut(node).and_then(|w| w.get_mut(slot)) {
            Some(w) => {
                *w += 1;
                (slot, *w)
            }
            None => (slot, 0), // unreachable: slot ids come from the table
        }
    }

    /// Returns an attempt's slot to the pool (no-op free count on a node
    /// that has since crashed: its pool is already zeroed forever).
    fn release_slot(&mut self, node: usize, slot: usize) {
        self.slots.release(node);
        self.in_use -= 1;
        self.slot_table.release(node, slot);
    }

    /// Adds `task` to the in-flight set (idempotent).
    fn note_running(&mut self, task: usize) {
        if self.running_pos.get(task).copied() != Some(NOT_RUNNING) {
            return;
        }
        if let Some(p) = self.running_pos.get_mut(task) {
            *p = self.running_tasks.len();
            self.running_tasks.push(task);
        }
    }

    /// Drops `task` from the in-flight set if its attempt list emptied.
    fn note_maybe_idle(&mut self, task: usize) {
        if !self.running.get(task).is_some_and(|l| l.is_empty()) {
            return;
        }
        let Some(&pos) = self.running_pos.get(task) else {
            return;
        };
        if pos == NOT_RUNNING {
            return;
        }
        let Some(last) = self.running_tasks.pop() else {
            return;
        };
        if last != task {
            if let Some(slot) = self.running_tasks.get_mut(pos) {
                *slot = last;
            }
            if let Some(p) = self.running_pos.get_mut(last) {
                *p = pos;
            }
        }
        if let Some(p) = self.running_pos.get_mut(task) {
            *p = NOT_RUNNING;
        }
    }

    /// Detaches the running attempt `(task, attempt)`, if still present.
    fn take_running(&mut self, task: usize, attempt: u32) -> Option<RunningAttempt> {
        let list = self.running.get_mut(task)?;
        let idx = list.iter().position(|r| r.attempt == attempt)?;
        let r = list.remove(idx);
        self.note_maybe_idle(task);
        Some(r)
    }

    /// Counts a failed attempt against `node`, blacklisting it — and,
    /// with an active rack domain, possibly its whole rack — once the
    /// policy thresholds are crossed. Blacklisting never strands the
    /// job: the last usable node, and the last rack with a usable node,
    /// stay schedulable.
    fn note_attempt_failure(&mut self, node: usize, now: SimTime) {
        if let Some(f) = self.node_failures.get_mut(node) {
            *f += 1;
        }
        let limit = self.policy.blacklist_after;
        let fails = self.node_failures.get(node).copied().unwrap_or(0);
        if limit > 0
            && fails >= limit
            && self.slots.usable(node)
            && self.slots.usable_other_than(node)
        {
            self.slots.set_unusable(node);
            self.fstats.blacklisted_nodes += 1;
            self.maybe_blacklist_rack(node, now);
        }
    }

    /// Escalates node blacklisting to rack granularity: once
    /// `rack_blacklist_after` nodes of one rack have been individually
    /// blacklisted, the whole rack (a bad ToR switch, in Hadoop terms)
    /// stops receiving attempts — unless it is the last rack with any
    /// usable node, which must stay schedulable.
    fn maybe_blacklist_rack(&mut self, node: usize, now: SimTime) {
        let racks = self.racks;
        let after = self.policy.rack_blacklist_after;
        if racks == 0 || after == 0 {
            return;
        }
        let rack = node % racks;
        if self.rack_blacklisted.get(rack).copied().unwrap_or(true) {
            return;
        }
        if let Some(c) = self.rack_blacklist_count.get_mut(rack) {
            *c += 1;
        }
        if self.rack_blacklist_count.get(rack).copied().unwrap_or(0) < after {
            return;
        }
        let nodes = self.node_failures.len();
        let usable_elsewhere = (0..nodes).any(|n| n % racks != rack && self.slots.usable(n));
        if !usable_elsewhere {
            return;
        }
        for n in (rack..nodes).step_by(racks) {
            if self.slots.usable(n) {
                self.slots.set_unusable(n);
            }
        }
        if let Some(b) = self.rack_blacklisted.get_mut(rack) {
            *b = true;
        }
        self.fstats.racks_blacklisted += 1;
        self.annotations
            .push((now.as_secs_f64(), format!("rack-blacklisted:{rack}")));
    }

    /// Records a losing attempt's span and its wasted slot-seconds.
    fn record_wasted(
        &mut self,
        task: usize,
        r: &RunningAttempt,
        now: SimTime,
        outcome: AttemptOutcome,
    ) {
        self.fstats.wasted_slot_s += now.saturating_sub(r.launched).as_secs_f64();
        self.wasted.push(TaskSpan {
            phase: String::new(),
            task,
            node: r.node,
            slot: r.slot,
            wave: r.wave,
            queued_s: r.queued.as_secs_f64(),
            launched_s: r.launched.as_secs_f64(),
            finished_s: now.as_secs_f64(),
            attempt: r.attempt,
            outcome,
            tier: r.tier,
        });
    }
}

/// Starts attempt `next_attempt[task]` of `task` on `node`, scheduling
/// its failure or completion event per the fault plan.
#[allow(clippy::too_many_arguments)]
fn launch_attempt(
    sim: &mut Simulation,
    state: &Rc<RefCell<FaultState>>,
    load: &PhaseLoad,
    faults: &PhaseFaults,
    task: usize,
    node: usize,
    queued: SimTime,
    speculative: bool,
) {
    let now = sim.now();
    let mut st = state.borrow_mut();
    let attempt = st.next_attempt[task];
    st.next_attempt[task] += 1;
    st.waiting[task] = false;
    let (slot, wave) = st.claim_slot(node);
    let wait = now.saturating_sub(queued);
    if !wait.is_zero() {
        st.stats.tasks_queued += 1;
        st.stats.total_wait_s += wait.as_secs_f64();
    }
    let tier = load.tier_for(task, node);
    let t = &load.timing[node];
    // A degraded rack uplink multiplies only the network-borne extras
    // (remote reads, shuffle fetch); ×1.0 on healthy links keeps the
    // legacy duration bitwise identical.
    let extra = load.extra_for(task, tier);
    let link = faults.domains.link_factor_at(node, now.as_secs_f64());
    if link > 1.0 && extra > 0.0 {
        st.fstats.link_degraded_attempts += 1;
    }
    let dur_s = t.task_seconds * attempt_jitter(task, attempt) * faults.slowdown[node]
        + t.overhead_seconds
        + extra * link;
    let dur = SimTime::from_secs_f64(dur_s);
    let rate = 1.0 / dur_s.max(1e-12);
    st.rate_sum += rate;
    st.rate_count += 1;
    if speculative {
        st.speculated[task] = true;
        st.fstats.speculative_launched += 1;
    }
    let event = match faults.plan.attempt_failure(task, attempt) {
        Some(frac) => {
            let st = state.clone();
            sim.schedule_in(SimTime::from_secs_f64(dur_s * frac), move |sim| {
                attempt_failed(sim, &st, task, attempt);
            })
        }
        None => {
            let st = state.clone();
            sim.schedule_in(dur, move |sim| {
                attempt_completed(sim, &st, task, attempt);
            })
        }
    };
    if let Some(list) = st.running.get_mut(task) {
        list.push(RunningAttempt {
            attempt,
            node,
            slot,
            wave,
            queued,
            launched: now,
            duration: dur,
            rate,
            event,
            speculative,
            tier,
        });
    }
    st.note_running(task);
}

/// Completion event: the first finisher wins its task; any rival attempt
/// is cancelled (Hadoop kills the loser of a speculative race).
fn attempt_completed(
    sim: &mut Simulation,
    state: &Rc<RefCell<FaultState>>,
    task: usize,
    attempt: u32,
) {
    let mut st = state.borrow_mut();
    let now = sim.now();
    let Some(r) = st.take_running(task, attempt) else {
        return;
    };
    st.release_slot(r.node, r.slot);
    if st.error.is_some() {
        // Phase already failed; just drain the calendar.
        return;
    }
    debug_assert!(!st.done[task], "two winners for task {task}");
    st.done[task] = true;
    st.pending -= 1;
    if r.speculative {
        st.fstats.speculative_wins += 1;
    }
    st.spans[task] = Some(TaskSpan {
        phase: String::new(),
        task,
        node: r.node,
        slot: r.slot,
        wave: r.wave,
        queued_s: r.queued.as_secs_f64(),
        launched_s: r.launched.as_secs_f64(),
        finished_s: now.as_secs_f64(),
        attempt: r.attempt,
        outcome: AttemptOutcome::Success,
        tier: r.tier,
    });
    if now > st.max_finish {
        st.max_finish = now;
    }
    while let Some(rival) = st.running.get_mut(task).and_then(|l| l.pop()) {
        sim.cancel(rival.event);
        st.release_slot(rival.node, rival.slot);
        st.record_wasted(task, &rival, now, AttemptOutcome::Cancelled);
        st.fstats.cancelled_attempts += 1;
    }
    st.note_maybe_idle(task);
}

/// Injected-failure event: count the failure, maybe blacklist the node,
/// and re-queue the task after exponential backoff — or fail the phase
/// once `max_attempts` is exhausted.
fn attempt_failed(
    sim: &mut Simulation,
    state: &Rc<RefCell<FaultState>>,
    task: usize,
    attempt: u32,
) {
    let mut st = state.borrow_mut();
    let now = sim.now();
    let Some(r) = st.take_running(task, attempt) else {
        return;
    };
    st.release_slot(r.node, r.slot);
    if st.error.is_some() {
        return;
    }
    st.record_wasted(task, &r, now, AttemptOutcome::Failed);
    st.fstats.failed_attempts += 1;
    st.failed[task] += 1;
    // Hadoop never blacklists its way to an empty cluster (it caps the
    // blacklisted fraction); we keep the last usable node schedulable.
    st.note_attempt_failure(r.node, now);
    if st.failed[task] >= st.policy.max_attempts {
        st.error = Some(PhaseError::AttemptsExhausted {
            task,
            attempts: st.failed[task],
        });
        return;
    }
    if !st.running.get(task).is_some_and(|l| l.is_empty()) {
        // A speculative rival is still in flight and may yet win.
        return;
    }
    let delay = SimTime::from_secs_f64(st.policy.backoff_s(st.failed[task]));
    st.waiting[task] = true;
    let stc = state.clone();
    sim.schedule_in(delay, move |sim| {
        let mut st = stc.borrow_mut();
        if st.error.is_none() {
            let queued = sim.now();
            st.queue.push_back(QueueEntry { task, queued });
        }
    });
}

/// Node-crash event: the node's slots disappear for the rest of the run
/// and every in-flight attempt on it is killed. Killed attempts do not
/// count against `max_attempts` (Hadoop's KILLED vs FAILED distinction)
/// and re-queue immediately.
fn crash_node(sim: &mut Simulation, state: &Rc<RefCell<FaultState>>, node: usize) {
    let mut st = state.borrow_mut();
    if st.error.is_some() || st.pending == 0 || !st.slots.alive(node) {
        // The phase is already over (the crash belongs to a later phase,
        // handled there via `dead_at_start`) or has failed.
        return;
    }
    let now = sim.now();
    st.slots.kill(node);
    st.fstats.node_crashes += 1;
    // Only the in-flight set can have attempts on the dead node; sort it
    // so victims are processed in ascending task order, exactly as the
    // old full scan over every task did.
    let mut victims: Vec<usize> = st
        .running_tasks
        .iter()
        .copied()
        .filter(|&task| {
            st.running
                .get(task)
                .is_some_and(|l| l.iter().any(|r| r.node == node))
        })
        .collect();
    victims.sort_unstable();
    for task in victims {
        let mut i = 0;
        while i < st.running.get(task).map_or(0, |l| l.len()) {
            let hit = st
                .running
                .get(task)
                .and_then(|l| l.get(i))
                .is_some_and(|r| r.node == node);
            if !hit {
                i += 1;
                continue;
            }
            let Some(r) = st.running.get_mut(task).map(|l| l.remove(i)) else {
                break;
            };
            sim.cancel(r.event);
            st.in_use -= 1;
            st.slot_table.release(node, r.slot);
            st.record_wasted(task, &r, now, AttemptOutcome::Killed);
            st.fstats.killed_attempts += 1;
            let idle = st.running.get(task).is_some_and(|l| l.is_empty());
            let done = st.done.get(task).copied().unwrap_or(false);
            let waiting = st.waiting.get(task).copied().unwrap_or(false);
            if !done && idle && !waiting {
                if let Some(w) = st.waiting.get_mut(task) {
                    *w = true;
                }
                if let Some(off) = task.checked_sub(st.base_tasks) {
                    // A killed map re-execution goes back to the
                    // recovery queue, not the reduce queue.
                    let map = st
                        .fetch
                        .as_ref()
                        .and_then(|f| f.reexec_map.get(off).copied());
                    if let (Some(map), Some(f)) = (map, st.fetch.as_mut()) {
                        f.queue.push_back(QueueEntry {
                            task: map,
                            queued: now,
                        });
                    }
                } else {
                    st.queue.push_back(QueueEntry { task, queued: now });
                }
            }
        }
        st.note_maybe_idle(task);
    }
}

/// Rack-crash marker event: counts and annotates a whole-rack (ToR
/// switch or correlated-domain) outage. Scheduled *before* the member
/// nodes' own crash events at the same instant, so "some node of the
/// rack was still alive" distinguishes a real rack outage from racks
/// that had already bled out node by node.
fn rack_crashed(sim: &mut Simulation, state: &Rc<RefCell<FaultState>>, rack: usize, racks: usize) {
    let mut st = state.borrow_mut();
    if st.error.is_some() || st.pending == 0 {
        return;
    }
    let nodes = st.node_failures.len();
    let any_alive = (rack..nodes)
        .step_by(racks.max(1))
        .any(|n| st.slots.alive(n));
    if !any_alive {
        return;
    }
    st.fstats.rack_crashes += 1;
    st.annotations
        .push((sim.now().as_secs_f64(), format!("rack-crash:{rack}")));
}

/// Fetch-failure handler, run right after [`crash_node`] for the same
/// node: any completed map whose output lived on the dead node is lost,
/// every in-flight reduce attempt registers a fetch failure (its shuffle
/// flow from that output is cancelled on the calendar) and is parked
/// until the lost maps have been re-executed on surviving nodes. A map
/// whose every input replica is also gone fails the phase with
/// [`PhaseError::DataLost`].
fn fetch_on_crash(sim: &mut Simulation, state: &Rc<RefCell<FaultState>>, node: usize) {
    let mut st = state.borrow_mut();
    if st.fetch.is_none() || st.error.is_some() || st.pending == 0 {
        return;
    }
    let now = sim.now();
    let lost: Vec<usize> = st
        .fetch
        .as_ref()
        .map(|f| {
            f.holders
                .iter()
                .enumerate()
                .filter(|&(m, &h)| h == node && !f.recovering.get(m).copied().unwrap_or(true))
                .map(|(m, _)| m)
                .collect()
        })
        .unwrap_or_default();
    if lost.is_empty() {
        return;
    }
    let nodes = st.node_failures.len();
    let alive: Vec<bool> = (0..nodes).map(|n| st.slots.alive(n)).collect();
    for m in lost {
        let all_replicas_gone = st.fetch.as_ref().map_or(true, |f| {
            f.replicas.get(m).map_or(true, |reps| {
                reps.iter()
                    .all(|&r| !alive.get(r).copied().unwrap_or(false))
            })
        });
        if all_replicas_gone {
            st.error = Some(PhaseError::DataLost { task: m });
            return;
        }
        // First loss of this map: allocate its synthetic engine id and
        // grow the per-task recovery vectors. Re-losses (the re-run's
        // holder crashed too) reuse the id so attempt counters carry on.
        let needs_id =
            st.fetch.as_ref().and_then(|f| f.engine_of.get(m).copied()) == Some(usize::MAX);
        if needs_id {
            let id = st.running.len();
            st.running.push(Vec::new());
            st.running_pos.push(NOT_RUNNING);
            st.failed.push(0);
            // Re-executions are attempt ≥ 2 of the original map task.
            st.next_attempt.push(2);
            st.done.push(false);
            st.speculated.push(true);
            st.waiting.push(true);
            if let Some(f) = st.fetch.as_mut() {
                if let Some(e) = f.engine_of.get_mut(m) {
                    *e = id;
                }
                f.reexec_map.push(m);
            }
        }
        if let Some(f) = st.fetch.as_mut() {
            if let Some(rec) = f.recovering.get_mut(m) {
                *rec = true;
            }
            f.outstanding += 1;
            f.queue.push_back(QueueEntry {
                task: m,
                queued: now,
            });
        }
    }
    // The shuffle is all-to-all: every in-flight reduce was fetching
    // from the lost outputs. Cancel their flows on the calendar and gate
    // them behind the re-executions. (Attempts on the dead node itself
    // were already killed by `crash_node`.)
    let mut victims: Vec<usize> = st
        .running_tasks
        .iter()
        .copied()
        .filter(|&t| t < st.base_tasks)
        .collect();
    victims.sort_unstable();
    for task in victims {
        while let Some(r) = st.running.get_mut(task).and_then(|l| l.pop()) {
            sim.cancel(r.event);
            st.release_slot(r.node, r.slot);
            st.record_wasted(task, &r, now, AttemptOutcome::FetchFailed);
            st.fstats.fetch_failures += 1;
        }
        st.note_maybe_idle(task);
        let done = st.done.get(task).copied().unwrap_or(false);
        let waiting = st.waiting.get(task).copied().unwrap_or(false);
        if !done && !waiting {
            if let Some(w) = st.waiting.get_mut(task) {
                *w = true;
            }
            if let Some(f) = st.fetch.as_mut() {
                f.gated.push(QueueEntry { task, queued: now });
            }
        }
    }
}

/// Where a lost map's re-execution can go.
enum ReexecChoice {
    /// Launch on this node at this surviving-replica locality tier.
    Run(usize, LocalityTier),
    /// Every input replica is gone; the job cannot recover.
    DataLost,
    /// No free slot right now; wait for the calendar.
    NoSlot,
}

/// Picks the node for a lost map's re-execution: the NameNode is
/// re-queried for the *surviving* replica set
/// ([`Topology::surviving_tier`]), and among free usable nodes the best
/// locality tier wins (lowest node id breaks ties) — a surviving replica
/// holder if possible, then a node in a surviving replica's rack, then
/// anywhere (pricing the off-rack read).
fn choose_reexec_node(st: &FaultState, map: usize) -> ReexecChoice {
    let Some(f) = st.fetch.as_ref() else {
        return ReexecChoice::NoSlot;
    };
    let reps: Vec<HdfsNodeId> = f
        .replicas
        .get(map)
        .map(|v| v.iter().map(|&r| HdfsNodeId(r)).collect())
        .unwrap_or_default();
    let nodes = st.node_failures.len();
    let alive: Vec<bool> = (0..nodes).map(|n| st.slots.alive(n)).collect();
    let mut best: Option<(LocalityTier, usize)> = None;
    for n in st.slots.free_nodes() {
        let Some(tier) = f.topology.surviving_tier(HdfsNodeId(n), &reps, &alive) else {
            return ReexecChoice::DataLost;
        };
        if best.map_or(true, |(bt, bn)| (tier, n) < (bt, bn)) {
            best = Some((tier, n));
        }
    }
    match best {
        Some((tier, n)) => ReexecChoice::Run(n, tier),
        None => {
            if reps
                .iter()
                .any(|r| alive.get(r.0).copied().unwrap_or(false))
            {
                ReexecChoice::NoSlot
            } else {
                ReexecChoice::DataLost
            }
        }
    }
}

/// Launches one re-execution attempt of lost map `map` on `node`: map
/// timing (not the surrounding reduce phase's), the surviving-replica
/// tier's read cost, and the same injected-failure draws as any other
/// attempt — re-executions can fail, be killed or be blacklisted too.
fn launch_reexec(
    sim: &mut Simulation,
    state: &Rc<RefCell<FaultState>>,
    faults: &PhaseFaults,
    map: usize,
    queued: SimTime,
    node: usize,
    tier: LocalityTier,
) {
    let now = sim.now();
    let mut st = state.borrow_mut();
    let Some(id) = st
        .fetch
        .as_ref()
        .and_then(|f| f.engine_of.get(map).copied())
        .filter(|&i| i != usize::MAX)
    else {
        return;
    };
    let attempt = st.next_attempt.get(id).copied().unwrap_or(2);
    if let Some(a) = st.next_attempt.get_mut(id) {
        *a += 1;
    }
    if let Some(w) = st.waiting.get_mut(id) {
        *w = false;
    }
    let (slot, wave) = st.claim_slot(node);
    let wait = now.saturating_sub(queued);
    if !wait.is_zero() {
        st.stats.tasks_queued += 1;
        st.stats.total_wait_s += wait.as_secs_f64();
    }
    let (task_s, over_s) = st
        .fetch
        .as_ref()
        .and_then(|f| f.map_timing.get(node))
        .map(|t| (t.task_seconds, t.overhead_seconds))
        .unwrap_or((0.0, 0.0));
    let read_s = st
        .fetch
        .as_ref()
        .and_then(|f| f.read_seconds.get(tier.idx()).copied())
        .unwrap_or(0.0);
    let slow = faults.slowdown.get(node).copied().unwrap_or(1.0);
    let link = faults.domains.link_factor_at(node, now.as_secs_f64());
    if link > 1.0 && read_s > 0.0 {
        st.fstats.link_degraded_attempts += 1;
    }
    let dur_s = task_s * attempt_jitter(map, attempt) * slow + over_s + read_s * link;
    let dur = SimTime::from_secs_f64(dur_s);
    let rate = 1.0 / dur_s.max(1e-12);
    st.rate_sum += rate;
    st.rate_count += 1;
    let event = match faults.plan.attempt_failure(id, attempt) {
        Some(frac) => {
            let stc = state.clone();
            sim.schedule_in(SimTime::from_secs_f64(dur_s * frac), move |sim| {
                reexec_failed(sim, &stc, id, attempt);
            })
        }
        None => {
            let stc = state.clone();
            sim.schedule_in(dur, move |sim| {
                reexec_completed(sim, &stc, id, attempt);
            })
        }
    };
    if let Some(list) = st.running.get_mut(id) {
        list.push(RunningAttempt {
            attempt,
            node,
            slot,
            wave,
            queued,
            launched: now,
            duration: dur,
            rate,
            event,
            speculative: false,
            tier,
        });
    }
    st.note_running(id);
}

/// A re-executed map landed: record its recovery span, move the output
/// to the new holder, and — once no re-execution is outstanding —
/// release the gated reduces back into the queue.
fn reexec_completed(
    sim: &mut Simulation,
    state: &Rc<RefCell<FaultState>>,
    id: usize,
    attempt: u32,
) {
    let mut st = state.borrow_mut();
    let now = sim.now();
    let Some(r) = st.take_running(id, attempt) else {
        return;
    };
    st.release_slot(r.node, r.slot);
    if st.error.is_some() {
        return;
    }
    let Some(map) = id.checked_sub(st.base_tasks).and_then(|off| {
        st.fetch
            .as_ref()
            .and_then(|f| f.reexec_map.get(off).copied())
    }) else {
        return;
    };
    st.recovered.push(TaskSpan {
        phase: String::new(),
        task: map,
        node: r.node,
        slot: r.slot,
        wave: r.wave,
        queued_s: r.queued.as_secs_f64(),
        launched_s: r.launched.as_secs_f64(),
        finished_s: now.as_secs_f64(),
        attempt: r.attempt,
        outcome: AttemptOutcome::Recovered,
        tier: r.tier,
    });
    st.fstats.reexecuted_maps += 1;
    if now > st.max_finish {
        st.max_finish = now;
    }
    let released = match st.fetch.as_mut() {
        Some(f) => {
            if let Some(h) = f.holders.get_mut(map) {
                *h = r.node;
            }
            if let Some(rec) = f.recovering.get_mut(map) {
                *rec = false;
            }
            f.outstanding = f.outstanding.saturating_sub(1);
            if f.outstanding == 0 {
                std::mem::take(&mut f.gated)
            } else {
                Vec::new()
            }
        }
        None => Vec::new(),
    };
    for e in released {
        st.queue.push_back(e);
    }
}

/// A re-execution attempt hit an injected failure: same accounting as
/// [`attempt_failed`] (wasted span, node failure, blacklisting, backoff
/// re-queue, attempt exhaustion) against the *map* task.
fn reexec_failed(sim: &mut Simulation, state: &Rc<RefCell<FaultState>>, id: usize, attempt: u32) {
    let mut st = state.borrow_mut();
    let now = sim.now();
    let Some(r) = st.take_running(id, attempt) else {
        return;
    };
    st.release_slot(r.node, r.slot);
    if st.error.is_some() {
        return;
    }
    let Some(map) = id.checked_sub(st.base_tasks).and_then(|off| {
        st.fetch
            .as_ref()
            .and_then(|f| f.reexec_map.get(off).copied())
    }) else {
        return;
    };
    st.record_wasted(map, &r, now, AttemptOutcome::Failed);
    st.fstats.failed_attempts += 1;
    if let Some(fl) = st.failed.get_mut(id) {
        *fl += 1;
    }
    st.note_attempt_failure(r.node, now);
    let fails = st.failed.get(id).copied().unwrap_or(0);
    if fails >= st.policy.max_attempts {
        st.error = Some(PhaseError::AttemptsExhausted {
            task: map,
            attempts: fails,
        });
        return;
    }
    let delay = SimTime::from_secs_f64(st.policy.backoff_s(fails));
    if let Some(w) = st.waiting.get_mut(id) {
        *w = true;
    }
    let stc = state.clone();
    sim.schedule_in(delay, move |sim| {
        let mut st = stc.borrow_mut();
        if st.error.is_none() {
            let queued = sim.now();
            if let Some(f) = st.fetch.as_mut() {
                f.queue.push_back(QueueEntry { task: map, queued });
            }
        }
    });
}

/// LATE speculation: among tasks with a single running attempt that has
/// run at least `spec_min_runtime_s` and progresses below
/// `spec_rate_threshold` × the mean rate of all launched attempts, pick
/// the slowest and duplicate it on the fastest usable node that is not
/// the primary's — but only if the backup is expected to finish first.
fn choose_speculation(
    st: &FaultState,
    load: &PhaseLoad,
    faults: &PhaseFaults,
    now: SimTime,
) -> Option<(usize, usize)> {
    if st.rate_count == 0 {
        return None;
    }
    let mean = st.rate_sum / st.rate_count as f64;
    // Only in-flight tasks can be candidates; the set is unordered, so
    // pick the lexicographic minimum of (rate, task) — identical to the
    // old ascending full-task scan with a strict `<` on rate.
    let mut cand: Option<(f64, usize)> = None;
    for &task in &st.running_tasks {
        if task >= st.base_tasks {
            // Map re-executions recover lost data; LATE never
            // duplicates them.
            continue;
        }
        let done = st.done.get(task).copied().unwrap_or(true);
        let speculated = st.speculated.get(task).copied().unwrap_or(true);
        if done || speculated {
            continue;
        }
        let Some([r]) = st.running.get(task).map(|l| l.as_slice()) else {
            continue;
        };
        if now.saturating_sub(r.launched).as_secs_f64() < st.policy.spec_min_runtime_s {
            continue;
        }
        if r.rate >= st.policy.spec_rate_threshold * mean {
            continue;
        }
        if cand.map_or(true, |(best, bt)| {
            r.rate < best || (r.rate == best && task < bt)
        }) {
            cand = Some((r.rate, task));
        }
    }
    let (_, task) = cand?;
    let primary = *st.running.get(task)?.first()?;
    let aj = attempt_jitter(task, st.next_attempt.get(task).copied()?);
    let mut best: Option<(f64, usize)> = None;
    for node in st.slots.free_nodes() {
        if node == primary.node {
            continue;
        }
        let t = load.timing.get(node)?;
        let d = t.task_seconds * aj * faults.slowdown.get(node)? + t.overhead_seconds;
        if best.map_or(true, |(bd, _)| d < bd) {
            best = Some((d, node));
        }
    }
    let (backup_s, node) = best?;
    if now + SimTime::from_secs_f64(backup_s) >= primary.launched + primary.duration {
        return None;
    }
    Some((task, node))
}

/// [`run_phase`] with optional fault injection: `None` (or an inert
/// [`PhaseFaults`]) reproduces the fault-free engine exactly; with
/// faults, tasks are re-executed per the plan's failures, node crashes
/// and the policy's speculation/blacklisting, and the run either
/// completes with attempt-level spans (wasted work included) or errors
/// cleanly.
///
/// # Panics
///
/// Panics if the cluster has no slots, or `load.timing`/the fault
/// vectors do not match the cluster's node count.
pub fn run_phase_faulty(
    cluster: &Cluster,
    load: &PhaseLoad,
    placement: &mut dyn Placement,
    faults: Option<&PhaseFaults>,
) -> Result<PhaseRun, PhaseError> {
    run_phase_faulty_fetch(cluster, load, placement, faults, None)
}

/// [`run_phase_faulty`] with Hadoop fetch-failure semantics for a reduce
/// phase: `fetch` says which node holds each completed map's output and
/// where the map input replicas live. When a holder dies mid-phase (or
/// died between the phases), its outputs are lost — in-flight reduce
/// attempts' shuffle flows are cancelled on the calendar as fetch
/// failures, reduces stall on the shuffle barrier, and the lost maps are
/// re-executed on surviving nodes at the surviving-replica locality tier
/// before the reduces resume. A map whose every input replica is gone
/// fails cleanly with [`PhaseError::DataLost`]. `fetch = None` is
/// exactly [`run_phase_faulty`].
///
/// # Panics
///
/// Same contract as [`run_phase_faulty`].
pub fn run_phase_faulty_fetch(
    cluster: &Cluster,
    load: &PhaseLoad,
    placement: &mut dyn Placement,
    faults: Option<&PhaseFaults>,
    fetch: Option<&FetchPlan>,
) -> Result<PhaseRun, PhaseError> {
    let Some(faults) = faults else {
        return Ok(run_phase(cluster, load, placement));
    };
    let nodes = cluster.nodes.len();
    let capacity = cluster.total_slots();
    assert!(capacity > 0, "need at least one slot");
    assert_eq!(load.timing.len(), nodes, "one timing entry per node");
    assert_eq!(faults.slowdown.len(), nodes, "one slowdown entry per node");
    assert_eq!(faults.crash_at_s.len(), nodes, "one crash entry per node");
    assert_eq!(
        faults.dead_at_start.len(),
        nodes,
        "one liveness entry per node"
    );
    let stats = SlotStats {
        capacity,
        ..SlotStats::default()
    };
    if load.tasks == 0 {
        return Ok(PhaseRun {
            makespan_s: 0.0,
            spans: Vec::new(),
            slots: stats,
            wasted: Vec::new(),
            recovered: Vec::new(),
            annotations: Vec::new(),
            faults: FaultStats::default(),
        });
    }

    let mut sim = Simulation::new();
    let state = Rc::new(RefCell::new(FaultState {
        slots: FreeSlots::with_dead(cluster, Some(&faults.dead_at_start)),
        slot_table: SlotTable::new(cluster),
        slot_waves: cluster.nodes.iter().map(|n| vec![0; n.slots]).collect(),
        queue: (0..load.tasks)
            .map(|task| QueueEntry {
                task,
                queued: SimTime::ZERO,
            })
            .collect(),
        in_use: 0,
        max_finish: SimTime::ZERO,
        stats,
        node_failures: vec![0; nodes],
        running: vec![Vec::new(); load.tasks],
        running_tasks: Vec::new(),
        running_pos: vec![NOT_RUNNING; load.tasks],
        failed: vec![0; load.tasks],
        next_attempt: vec![1; load.tasks],
        done: vec![false; load.tasks],
        speculated: vec![false; load.tasks],
        waiting: vec![true; load.tasks],
        pending: load.tasks,
        rate_sum: 0.0,
        rate_count: 0,
        spans: vec![None; load.tasks],
        wasted: Vec::new(),
        fstats: FaultStats::default(),
        policy: faults.policy,
        error: None,
        base_tasks: load.tasks,
        racks: faults.domains.racks,
        rack_blacklist_count: vec![0; faults.domains.racks],
        rack_blacklisted: vec![false; faults.domains.racks],
        annotations: Vec::new(),
        recovered: Vec::new(),
        fetch: fetch.map(|p| FetchCtx {
            holders: p.holders.clone(),
            replicas: p.map_replicas.clone(),
            topology: p.topology,
            read_seconds: p.read_seconds,
            map_timing: p.map_timing.clone(),
            engine_of: vec![usize::MAX; p.holders.len()],
            reexec_map: Vec::new(),
            queue: VecDeque::new(),
            recovering: vec![false; p.holders.len()],
            outstanding: 0,
            gated: Vec::new(),
        }),
    }));

    // Map outputs on nodes that died between the phases are lost before
    // the first reduce even launches.
    if fetch.is_some() {
        for (node, &dead) in faults.dead_at_start.iter().enumerate() {
            if dead {
                fetch_on_crash(&mut sim, &state, node);
            }
        }
    }

    // Rack-outage markers go on the calendar before the member nodes'
    // own crash events, so at an identical timestamp the marker still
    // sees the rack alive.
    if faults.domains.racks > 0 {
        let racks = faults.domains.racks;
        for (rack, crash) in faults.domains.rack_crash_at_s.iter().enumerate() {
            if let Some(t) = crash {
                let st = state.clone();
                sim.schedule_at(SimTime::from_secs_f64(*t), move |sim| {
                    rack_crashed(sim, &st, rack, racks);
                });
            }
        }
    }

    for (node, crash) in faults.crash_at_s.iter().enumerate() {
        if let Some(t) = crash {
            let st = state.clone();
            sim.schedule_at(SimTime::from_secs_f64(*t), move |sim| {
                crash_node(sim, &st, node);
                fetch_on_crash(sim, &st, node);
            });
        }
    }

    // Same grant discipline as the fault-free engine — FIFO queue,
    // placement picks the node — plus a speculation pass once the queue
    // is empty.
    let dispatch = |sim: &mut Simulation, placement: &mut dyn Placement| {
        loop {
            {
                let st = state.borrow();
                if st.error.is_some() || st.slots.total_free() == 0 {
                    break;
                }
            }
            // Fetch-failure recovery runs ahead of everything else.
            let reexec = {
                let st = state.borrow();
                st.fetch.as_ref().and_then(|f| f.queue.front().copied())
            };
            if let Some(entry) = reexec {
                let choice = choose_reexec_node(&state.borrow(), entry.task);
                match choice {
                    ReexecChoice::Run(node, tier) => {
                        if let Some(f) = state.borrow_mut().fetch.as_mut() {
                            f.queue.pop_front();
                        }
                        launch_reexec(sim, &state, faults, entry.task, entry.queued, node, tier);
                        continue;
                    }
                    ReexecChoice::DataLost => {
                        state.borrow_mut().error = Some(PhaseError::DataLost { task: entry.task });
                        break;
                    }
                    ReexecChoice::NoSlot => break,
                }
            }
            // Reduces stall on the shuffle barrier while lost map
            // outputs are being re-executed.
            if state
                .borrow()
                .fetch
                .as_ref()
                .is_some_and(|f| f.outstanding > 0)
            {
                break;
            }
            let front = state.borrow().queue.front().copied();
            if let Some(entry) = front {
                let node = {
                    let st = state.borrow();
                    let (node, _tier) = placement.place_local(
                        entry.task,
                        cluster,
                        &st.slots,
                        load.locality.as_ref(),
                    );
                    assert!(
                        st.slots.free(node) > 0 && st.slots.usable(node),
                        "placement chose an unusable node"
                    );
                    node
                };
                state.borrow_mut().queue.pop_front();
                launch_attempt(
                    sim,
                    &state,
                    load,
                    faults,
                    entry.task,
                    node,
                    entry.queued,
                    false,
                );
                continue;
            }
            if !faults.policy.speculation {
                break;
            }
            let pick = {
                let st = state.borrow();
                choose_speculation(&st, load, faults, sim.now())
            };
            let Some((task, node)) = pick else {
                break;
            };
            let now = sim.now();
            launch_attempt(sim, &state, load, faults, task, node, now, true);
        }
        let mut st = state.borrow_mut();
        let backlog = st.queue.len();
        st.stats.max_queue_len = st.stats.max_queue_len.max(backlog);
    };

    dispatch(&mut sim, placement);
    while sim.step() {
        dispatch(&mut sim, placement);
    }

    let st = Rc::try_unwrap(state)
        .expect("all calendar events have drained")
        .into_inner();
    if let Some(e) = st.error {
        return Err(e);
    }
    if st.pending > 0 {
        return Err(PhaseError::NoUsableSlots {
            pending: st.pending,
        });
    }
    let spans: Vec<TaskSpan> = st.spans.into_iter().flatten().collect();
    debug_assert_eq!(spans.len(), load.tasks, "one winning span per task");
    Ok(PhaseRun {
        makespan_s: st.max_finish.as_secs_f64(),
        spans,
        slots: st.stats,
        wasted: st.wasted,
        recovered: st.recovered,
        annotations: st.annotations,
        faults: st.fstats,
    })
}

/// Node metadata echoed into exports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMeta {
    /// Node display name.
    pub name: String,
    /// "Xeon" or "Atom".
    pub kind: String,
    /// Slot count.
    pub slots: usize,
}

/// The per-task timeline of a whole run: successive phases' spans
/// shifted onto one absolute clock.
///
/// Spans are stored struct-of-arrays: one flat column per field, with
/// phase labels interned once per phase instead of cloned per span. At a
/// million tasks this is a single arena of primitive columns — no
/// per-span `String`, no per-span allocation — and iteration for export
/// is a linear column walk. [`ClusterTimeline::get`] /
/// [`ClusterTimeline::iter`]
/// materialize [`TaskSpan`] views on demand for the few consumers that
/// want the row form.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterTimeline {
    /// The cluster's nodes (index = `TaskSpan::node`).
    pub nodes: Vec<NodeMeta>,
    /// Interned phase labels, in first-appearance order.
    phases: Vec<String>,
    /// Per-span phase label index into `phases`.
    phase_ix: Vec<u32>,
    task: Vec<u32>,
    node: Vec<u32>,
    slot: Vec<u32>,
    wave: Vec<u32>,
    queued_s: Vec<f64>,
    launched_s: Vec<f64>,
    finished_s: Vec<f64>,
    attempt: Vec<u32>,
    outcome: Vec<AttemptOutcome>,
    #[serde(default)]
    tier: Vec<LocalityTier>,
    /// Absolute-time domain-event annotations (`"rack-crash:<r>"`,
    /// `"rack-blacklisted:<r>"`), exported as instant events. Empty —
    /// and bitwise invisible in every export — without active failure
    /// domains.
    #[serde(default)]
    ann_time_s: Vec<f64>,
    #[serde(default)]
    ann_label: Vec<String>,
}

/// Narrows an engine-side index (task/node/slot/wave) to its column type.
fn narrow(v: usize) -> u32 {
    // An index beyond u32 means the arena invariant is already broken;
    // wrapping would silently corrupt the timeline, so fail loudly.
    // hhsim: allow(panic-in-engine): invariant breach must not wrap into a valid-looking column value
    u32::try_from(v).expect("index exceeds u32 column")
}

impl ClusterTimeline {
    /// An empty timeline over `cluster`.
    pub fn new(cluster: &Cluster) -> Self {
        ClusterTimeline {
            nodes: cluster
                .nodes
                .iter()
                .map(|n| NodeMeta {
                    name: n.name.clone(),
                    kind: n.kind.to_string(),
                    slots: n.slots,
                })
                .collect(),
            ..ClusterTimeline::default()
        }
    }

    fn intern(&mut self, phase: &str) -> u32 {
        // Phase counts are tiny (a few per job); linear probe.
        if let Some(i) = self.phases.iter().position(|p| p == phase) {
            return narrow(i);
        }
        self.phases.push(phase.to_string());
        narrow(self.phases.len() - 1)
    }

    /// Appends a phase's spans, labelled `phase`, shifted by `offset_s`.
    /// Wasted attempts (failed/killed/cancelled/fetch-failed) follow the
    /// winning spans, and recovered map re-executions follow those, so
    /// utilization and the energy model charge their slot time too.
    /// Domain-event annotations are shifted onto the same clock.
    pub fn extend(&mut self, phase: &str, offset_s: f64, run: &PhaseRun) {
        let pix = self.intern(phase);
        let extra = run.spans.len() + run.wasted.len() + run.recovered.len();
        self.phase_ix.reserve(extra);
        for (t, label) in &run.annotations {
            self.ann_time_s.push(t + offset_s);
            self.ann_label.push(label.clone());
        }
        for s in run.spans.iter().chain(&run.wasted).chain(&run.recovered) {
            self.phase_ix.push(pix);
            self.task.push(narrow(s.task));
            self.node.push(narrow(s.node));
            self.slot.push(narrow(s.slot));
            self.wave.push(narrow(s.wave));
            self.queued_s.push(s.queued_s + offset_s);
            self.launched_s.push(s.launched_s + offset_s);
            self.finished_s.push(s.finished_s + offset_s);
            self.attempt.push(s.attempt);
            self.outcome.push(s.outcome);
            self.tier.push(s.tier);
        }
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.phase_ix.len()
    }

    /// True if no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.phase_ix.is_empty()
    }

    /// Materializes span `i` as a row, if in bounds.
    pub fn get(&self, i: usize) -> Option<TaskSpan> {
        let pix = *self.phase_ix.get(i)? as usize;
        Some(TaskSpan {
            phase: self.phases.get(pix).cloned().unwrap_or_default(),
            task: *self.task.get(i)? as usize,
            node: *self.node.get(i)? as usize,
            slot: *self.slot.get(i)? as usize,
            wave: *self.wave.get(i)? as usize,
            queued_s: *self.queued_s.get(i)?,
            launched_s: *self.launched_s.get(i)?,
            finished_s: *self.finished_s.get(i)?,
            attempt: *self.attempt.get(i)?,
            outcome: *self.outcome.get(i)?,
            tier: self.tier.get(i).copied().unwrap_or_default(),
        })
    }

    /// Materializing iterator over all spans in append order.
    pub fn iter(&self) -> impl Iterator<Item = TaskSpan> + '_ {
        (0..self.len()).filter_map(|i| self.get(i))
    }

    /// Latest task completion, seconds.
    pub fn end_s(&self) -> f64 {
        self.finished_s.iter().copied().fold(0.0, f64::max)
    }

    /// Folds a `(time, ±1)` event list (already grouped per node, in
    /// span-append order) into the active-slot step function.
    fn steps_from_events(events: &mut [(f64, i64)]) -> Vec<(f64, usize)> {
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut steps = vec![(0.0, 0usize)];
        let mut active = 0i64;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                active += events[i].1;
                i += 1;
            }
            let a = usize::try_from(active.max(0)).expect("active fits usize");
            if t == 0.0 {
                steps[0].1 = a;
            } else {
                steps.push((t, a));
            }
        }
        steps
    }

    /// Step function of busy slots on `node`: `(time, active)` points at
    /// every change, starting at `(0, 0)`. Feeds the utilization-driven
    /// power model.
    pub fn active_steps(&self, node: usize) -> Vec<(f64, usize)> {
        let mut events: Vec<(f64, i64)> = Vec::new();
        for i in 0..self.len() {
            if self.node.get(i).copied() == Some(narrow(node)) {
                events.push((self.launched_s.get(i).copied().unwrap_or(0.0), 1));
                events.push((self.finished_s.get(i).copied().unwrap_or(0.0), -1));
            }
        }
        Self::steps_from_events(&mut events)
    }

    /// True if any span ran off its input's node — the trigger for the
    /// tier-annotated utilization format. Flat (legacy) runs have every
    /// span node-local and keep the legacy export bytes.
    fn has_remote_tiers(&self) -> bool {
        self.tier.iter().any(|&t| t != LocalityTier::NodeLocal)
    }

    /// Tier-aware analogue of [`steps_from_events`](Self::steps_from_events):
    /// folds `(time, ±1, ±1-per-tier)` events into
    /// `(time, active, active-per-tier)` steps with identical time
    /// merging.
    fn tier_steps_from_events(
        // hhsim: allow(panic-in-engine): slice type in a signature, not indexing
        events: &mut [(f64, i64, [i64; 3])],
    ) -> Vec<(f64, usize, [usize; 3])> {
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut steps = vec![(0.0, 0usize, [0usize; 3])];
        let mut active = 0i64;
        let mut per = [0i64; 3];
        let mut it = events.iter().peekable();
        while let Some(&(t, d, dp)) = it.next() {
            active += d;
            for (acc, delta) in per.iter_mut().zip(dp) {
                *acc += delta;
            }
            if it.peek().is_some_and(|&&(t2, _, _)| t2 == t) {
                continue;
            }
            let a = active.max(0) as usize;
            let p = per.map(|v| v.max(0) as usize);
            if t == 0.0 {
                if let Some(first) = steps.first_mut() {
                    *first = (0.0, a, p);
                }
            } else {
                steps.push((t, a, p));
            }
        }
        steps
    }

    /// Per-node `(time, active, active-per-tier)` step functions in one
    /// linear pass over the span columns.
    fn tier_steps_all(&self) -> Vec<Vec<(f64, usize, [usize; 3])>> {
        let mut events: Vec<Vec<(f64, i64, [i64; 3])>> = vec![Vec::new(); self.nodes.len()];
        for i in 0..self.len() {
            let n = self.node.get(i).copied().unwrap_or(0) as usize;
            let tier = self.tier.get(i).copied().unwrap_or_default() as usize;
            if let Some(ev) = events.get_mut(n) {
                let mut up = [0i64; 3];
                up[tier] = 1; // hhsim: allow(panic-in-engine): tier = LocalityTier as usize <= 2 into a [_; 3]
                let mut down = [0i64; 3];
                down[tier] = -1; // hhsim: allow(panic-in-engine): tier = LocalityTier as usize <= 2 into a [_; 3]
                ev.push((self.launched_s.get(i).copied().unwrap_or(0.0), 1, up));
                ev.push((self.finished_s.get(i).copied().unwrap_or(0.0), -1, down));
            }
        }
        events
            .iter_mut()
            .map(|ev| Self::tier_steps_from_events(ev.as_mut_slice()))
            .collect()
    }

    /// [`active_steps`](Self::active_steps) for every node in one linear
    /// pass over the span columns — O(spans + nodes) instead of the
    /// O(nodes × spans) of calling the per-node form in a loop. The
    /// per-node step functions are identical to the per-node form's.
    pub fn active_steps_all(&self) -> Vec<Vec<(f64, usize)>> {
        let mut events: Vec<Vec<(f64, i64)>> = vec![Vec::new(); self.nodes.len()];
        for i in 0..self.len() {
            let n = self.node.get(i).copied().unwrap_or(0) as usize;
            if let Some(ev) = events.get_mut(n) {
                ev.push((self.launched_s.get(i).copied().unwrap_or(0.0), 1));
                ev.push((self.finished_s.get(i).copied().unwrap_or(0.0), -1));
            }
        }
        events
            .iter_mut()
            .map(|ev| Self::steps_from_events(ev.as_mut_slice()))
            .collect()
    }

    /// Busy slot-seconds on `node` (integral of the active-slot curve).
    pub fn busy_slot_seconds(&self, node: usize) -> f64 {
        let mut sum = 0.0;
        for i in 0..self.len() {
            if self.node.get(i).copied() == Some(narrow(node)) {
                sum += self.finished_s.get(i).copied().unwrap_or(0.0)
                    - self.launched_s.get(i).copied().unwrap_or(0.0);
            }
        }
        sum
    }

    /// Chrome-trace-viewer JSON (`chrome://tracing`, Perfetto): one `X`
    /// event per task span, `pid` = node, `tid` = slot, timestamps in
    /// microseconds, plus process-name metadata per node. Output is
    /// deterministic: spans are emitted in append order with fixed
    /// 3-decimal microsecond formatting.
    ///
    /// This buffered form is the *reference* for the streaming
    /// [`write_chrome_trace`](Self::write_chrome_trace); the equality
    /// tests diff the two byte-for-byte.
    pub fn to_chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (pid, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{} ({} x{})\"}}}},",
                n.name, n.kind, n.slots
            );
        }
        for s in self.iter() {
            let ts = s.launched_s * 1e6;
            let dur = (s.finished_s - s.launched_s) * 1e6;
            let wait = (s.launched_s - s.queued_s) * 1e6;
            // Attempt/outcome/tier args only when non-default, so
            // fault-free node-local traces stay byte-identical to the
            // earlier formats.
            let mut extra = String::new();
            if s.attempt > 1 {
                let _ = write!(extra, ",\"attempt\":{}", s.attempt);
            }
            if s.outcome != AttemptOutcome::Success {
                let _ = write!(extra, ",\"outcome\":\"{}\"", s.outcome.as_str());
            }
            if s.tier != LocalityTier::NodeLocal {
                let _ = write!(extra, ",\"tier\":\"{}\"", s.tier.as_str());
            }
            let _ = writeln!(
                out,
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\
                 \"name\":\"{}-{}\",\"cat\":\"{}\",\
                 \"args\":{{\"task\":{},\"wave\":{},\"wait_us\":{wait:.3}{extra}}}}},",
                s.node, s.slot, s.phase, s.task, s.phase, s.task, s.wave
            );
        }
        // Domain events (rack crashes, rack blacklists) as global
        // instant events; absent without active failure domains, keeping
        // legacy traces byte-identical.
        for (t, label) in self.ann_time_s.iter().zip(&self.ann_label) {
            let ts = t * 1e6;
            let _ = writeln!(
                out,
                "{{\"ph\":\"i\",\"pid\":0,\"ts\":{ts:.3},\"name\":\"{label}\",\"s\":\"g\"}},"
            );
        }
        // Trailing comma is invalid JSON; close with a sentinel metadata
        // event instead of tracking "first".
        out.push_str("{\"ph\":\"M\",\"pid\":0,\"name\":\"trace_end\",\"args\":{}}\n]}\n");
        out
    }

    /// Streaming form of [`to_chrome_trace_json`](Self::to_chrome_trace_json):
    /// writes the identical bytes incrementally to `w` (wrap files in a
    /// `BufWriter`), so exporting a million-span trace needs no
    /// trace-sized `String`. Memory stays flat in the span count.
    pub fn write_chrome_trace<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")?;
        for (pid, n) in self.nodes.iter().enumerate() {
            writeln!(
                w,
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{} ({} x{})\"}}}},",
                n.name, n.kind, n.slots
            )?;
        }
        let mut extra = String::new();
        for i in 0..self.len() {
            let launched = self.launched_s.get(i).copied().unwrap_or(0.0);
            let finished = self.finished_s.get(i).copied().unwrap_or(0.0);
            let queued = self.queued_s.get(i).copied().unwrap_or(0.0);
            let ts = launched * 1e6;
            let dur = (finished - launched) * 1e6;
            let wait = (launched - queued) * 1e6;
            let attempt = self.attempt.get(i).copied().unwrap_or(1);
            let outcome = self.outcome.get(i).copied().unwrap_or_default();
            let tier = self.tier.get(i).copied().unwrap_or_default();
            extra.clear();
            if attempt > 1 {
                let _ = write!(extra, ",\"attempt\":{attempt}");
            }
            if outcome != AttemptOutcome::Success {
                let _ = write!(extra, ",\"outcome\":\"{}\"", outcome.as_str());
            }
            if tier != LocalityTier::NodeLocal {
                let _ = write!(extra, ",\"tier\":\"{}\"", tier.as_str());
            }
            let phase = self
                .phase_ix
                .get(i)
                .and_then(|&p| self.phases.get(p as usize))
                .map(String::as_str)
                .unwrap_or("");
            writeln!(
                w,
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\
                 \"name\":\"{phase}-{}\",\"cat\":\"{phase}\",\
                 \"args\":{{\"task\":{},\"wave\":{},\"wait_us\":{wait:.3}{extra}}}}},",
                self.node.get(i).copied().unwrap_or(0),
                self.slot.get(i).copied().unwrap_or(0),
                self.task.get(i).copied().unwrap_or(0),
                self.task.get(i).copied().unwrap_or(0),
                self.wave.get(i).copied().unwrap_or(0),
            )?;
        }
        for (t, label) in self.ann_time_s.iter().zip(&self.ann_label) {
            let ts = t * 1e6;
            writeln!(
                w,
                "{{\"ph\":\"i\",\"pid\":0,\"ts\":{ts:.3},\"name\":\"{label}\",\"s\":\"g\"}},"
            )?;
        }
        w.write_all(b"{\"ph\":\"M\",\"pid\":0,\"name\":\"trace_end\",\"args\":{}}\n]}\n")
    }

    /// Per-node utilization as CSV: `node,name,time_s,active_slots` step
    /// rows (one per change point). When any span ran rack-local or
    /// off-rack, three per-tier active-slot columns
    /// (`node_local,rack_local,off_rack`) follow, so the export carries
    /// the locality mix; flat (all node-local) runs keep the legacy
    /// four-column format byte-for-byte.
    ///
    /// This buffered form is the *reference* for the streaming
    /// [`write_utilization_csv`](Self::write_utilization_csv); the
    /// equality tests diff the two byte-for-byte.
    pub fn utilization_csv(&self) -> String {
        if self.has_remote_tiers() {
            let mut buf = Vec::new();
            // Writes to a Vec cannot fail.
            let _ = self.write_utilization_csv(&mut buf);
            return String::from_utf8(buf).unwrap_or_default();
        }
        let mut out = String::from("node,name,time_s,active_slots\n");
        for (i, n) in self.nodes.iter().enumerate() {
            for (t, a) in self.active_steps(i) {
                let _ = writeln!(out, "{i},{},{t:.6},{a}", n.name);
            }
        }
        out
    }

    /// Streaming form of [`utilization_csv`](Self::utilization_csv):
    /// identical bytes, written incrementally, with the per-node step
    /// functions computed in one pass over the span columns
    /// ([`active_steps_all`](Self::active_steps_all)) instead of one
    /// full-timeline scan per node.
    pub fn write_utilization_csv<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        if self.has_remote_tiers() {
            w.write_all(b"node,name,time_s,active_slots,node_local,rack_local,off_rack\n")?;
            let steps = self.tier_steps_all();
            for (i, n) in self.nodes.iter().enumerate() {
                for &(t, a, [nl, rl, of]) in steps.get(i).map(Vec::as_slice).unwrap_or_default() {
                    writeln!(w, "{i},{},{t:.6},{a},{nl},{rl},{of}", n.name)?;
                }
            }
            return Ok(());
        }
        w.write_all(b"node,name,time_s,active_slots\n")?;
        let steps = self.active_steps_all();
        for (i, n) in self.nodes.iter().enumerate() {
            for (t, a) in steps.get(i).map_or(&[][..], Vec::as_slice) {
                writeln!(w, "{i},{},{t:.6},{a}", n.name)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tasks: usize, secs: f64) -> TaskSet {
        TaskSet {
            tasks,
            task_seconds: secs,
            overhead_seconds: 0.0,
        }
    }

    fn makespan(set: &TaskSet, slots: usize) -> f64 {
        homogeneous_makespan(set, 1, slots, CoreKind::Big)
    }

    #[test]
    fn single_wave_equals_longest_task() {
        let t = makespan(&set(4, 10.0), 8);
        assert!((9.2..=10.8).contains(&t), "one wave with jitter, got {t}");
    }

    #[test]
    fn waves_stack() {
        let t1 = makespan(&set(8, 10.0), 8);
        let t3 = makespan(&set(24, 10.0), 8);
        assert!(t3 > 2.7 * t1, "three waves must take ~3x one wave");
        assert!(t3 < 3.3 * t1);
    }

    #[test]
    fn overhead_charges_per_task() {
        let no = makespan(&set(16, 10.0), 4);
        let with = makespan(
            &TaskSet {
                tasks: 16,
                task_seconds: 10.0,
                overhead_seconds: 2.0,
            },
            4,
        );
        // 4 waves x 2 s extra per task in the critical path.
        assert!((with - no - 8.0).abs() < 1.0, "got {}", with - no);
    }

    #[test]
    fn more_slots_cannot_be_slower() {
        let few = makespan(&set(20, 5.0), 2);
        let many = makespan(&set(20, 5.0), 10);
        assert!(many < few);
    }

    #[test]
    fn node_split_does_not_change_homogeneous_makespan() {
        // 1 node x 8 slots and 4 nodes x 2 slots are the same flat pool
        // when every node is identical.
        let s = set(20, 5.0);
        assert_eq!(
            homogeneous_makespan(&s, 1, 8, CoreKind::Big),
            homogeneous_makespan(&s, 4, 2, CoreKind::Big),
        );
    }

    #[test]
    fn empty_set_is_free() {
        assert_eq!(makespan(&set(0, 5.0), 4), 0.0);
    }

    #[test]
    fn deterministic() {
        let a = makespan(&set(37, 3.3), 5);
        let b = makespan(&set(37, 3.3), 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = makespan(&set(1, 1.0), 0);
    }

    fn mixed_cluster() -> Cluster {
        Cluster::mixed(1, 2, 2, 2)
    }

    fn hetero_load(tasks: usize, cluster: &Cluster) -> PhaseLoad {
        PhaseLoad::by_kind(
            tasks,
            NodeTiming {
                task_seconds: 4.0,
                overhead_seconds: 0.0,
            },
            NodeTiming {
                task_seconds: 10.0,
                overhead_seconds: 0.0,
            },
            cluster,
        )
    }

    #[test]
    fn duration_follows_the_landing_node() {
        let c = mixed_cluster();
        let run = run_phase(&c, &hetero_load(4, &c), &mut FifoAnySlot);
        for s in &run.spans {
            let d = s.finished_s - s.launched_s;
            match c.nodes[s.node].kind {
                CoreKind::Big => assert!((3.5..=4.5).contains(&d), "big task took {d}"),
                CoreKind::Little => assert!((9.0..=11.0).contains(&d), "little task took {d}"),
            }
        }
    }

    #[test]
    fn kind_preferring_lands_on_preferred_kind_first() {
        let c = mixed_cluster();
        let mut p = KindPreferring {
            preferred: CoreKind::Little,
        };
        // 4 little slots... only 2 — cluster is 1 big x2 + 2 little x2.
        let run = run_phase(&c, &hetero_load(4, &c), &mut p);
        let on_little = run
            .spans
            .iter()
            .filter(|s| c.nodes[s.node].kind == CoreKind::Little)
            .count();
        assert_eq!(on_little, 4, "all four fit on the four little slots");
    }

    #[test]
    fn kind_preferring_spills_when_saturated() {
        let c = mixed_cluster();
        let mut p = KindPreferring {
            preferred: CoreKind::Little,
        };
        let run = run_phase(&c, &hetero_load(6, &c), &mut p);
        let on_big = run
            .spans
            .iter()
            .filter(|s| c.nodes[s.node].kind == CoreKind::Big)
            .count();
        assert!(on_big > 0, "work-conserving spill onto the big node");
    }

    #[test]
    fn placement_constructors_wire_to_sched() {
        let p = KindPreferring::for_class(JobClass::Compute, MetricKind::Edp);
        assert_eq!(p.preferred, CoreKind::Little);
        let p = KindPreferring::for_class(JobClass::Io, MetricKind::Edp);
        assert_eq!(p.preferred, CoreKind::Big);
        assert_eq!(
            KindPreferring::from_cost_table(&CostTable::new(), MetricKind::Edp).preferred,
            CoreKind::Big,
            "empty table falls back to big"
        );
    }

    #[test]
    fn spans_are_complete_and_ordered() {
        let c = Cluster::homogeneous(CoreKind::Big, 2, 2);
        let s = set(9, 3.0);
        let run = run_phase(&c, &PhaseLoad::uniform(&s, &c), &mut FifoAnySlot);
        assert_eq!(run.spans.len(), 9);
        for (i, sp) in run.spans.iter().enumerate() {
            assert_eq!(sp.task, i);
            assert!(sp.finished_s > sp.launched_s);
            assert!(sp.launched_s >= sp.queued_s);
            assert!(sp.wave >= 1);
            assert!(sp.node < 2 && sp.slot < 2);
        }
        let end = run.spans.iter().map(|s| s.finished_s).fold(0.0, f64::max);
        assert_eq!(end, run.makespan_s);
    }

    #[test]
    fn slot_stats_count_queueing() {
        let c = Cluster::homogeneous(CoreKind::Big, 1, 2);
        let s = set(5, 2.0);
        let run = run_phase(&c, &PhaseLoad::uniform(&s, &c), &mut FifoAnySlot);
        assert_eq!(run.slots.capacity, 2);
        assert_eq!(run.slots.peak_in_use, 2);
        assert_eq!(run.slots.tasks_queued, 3, "tasks beyond the first wave");
        assert_eq!(run.slots.max_queue_len, 3);
        assert!(run.slots.total_wait_s > 0.0);
        assert!(run.slots.mean_wait_s() > 0.0);
    }

    use hhsim_faults::FaultPlan;

    /// Task-failure-only fault layer: no crashes, no stragglers.
    fn failure_faults(nodes: usize, rate: f64, seed: u64) -> PhaseFaults {
        PhaseFaults {
            plan: FaultPlan::new(seed, 0, rate),
            crash_at_s: vec![None; nodes],
            dead_at_start: vec![false; nodes],
            slowdown: vec![1.0; nodes],
            policy: RecoveryPolicy::hadoop(),
            domains: hhsim_faults::PhaseDomains::default(),
        }
    }

    #[test]
    fn attempt_jitter_first_attempt_matches_jitter() {
        for task in 0..64 {
            assert_eq!(attempt_jitter(task, 1), jitter(task));
        }
        assert_ne!(attempt_jitter(3, 2), attempt_jitter(3, 1));
        let j = attempt_jitter(3, 2);
        assert!((0.92..=1.08).contains(&j));
    }

    #[test]
    fn inert_faults_match_fault_free_engine_exactly() {
        let c = mixed_cluster();
        let load = hetero_load(9, &c);
        let plain = run_phase(&c, &load, &mut FifoAnySlot);
        let inert = run_phase_faulty(
            &c,
            &load,
            &mut FifoAnySlot,
            Some(&PhaseFaults::inert(c.nodes.len())),
        )
        .expect("inert faults cannot fail the phase");
        assert_eq!(plain, inert, "inert fault layer must be a perfect no-op");

        let mut p = KindPreferring {
            preferred: CoreKind::Little,
        };
        let plain = run_phase(&c, &load, &mut p);
        let mut p = KindPreferring {
            preferred: CoreKind::Little,
        };
        let inert = run_phase_faulty(&c, &load, &mut p, Some(&PhaseFaults::inert(c.nodes.len())))
            .expect("inert faults cannot fail the phase");
        assert_eq!(plain, inert);

        let none = run_phase_faulty(&c, &load, &mut FifoAnySlot, None)
            .expect("no faults cannot fail the phase");
        assert_eq!(none, run_phase(&c, &load, &mut FifoAnySlot));
    }

    #[test]
    fn failed_attempts_are_reexecuted() {
        let c = Cluster::homogeneous(CoreKind::Big, 1, 2);
        let load = PhaseLoad::uniform(&set(16, 10.0), &c);
        let faults = failure_faults(1, 0.4, 7);
        let baseline = run_phase(&c, &load, &mut FifoAnySlot);
        let run = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect("recovery must absorb sub-certain failure rates");
        assert!(
            run.faults.failed_attempts > 0,
            "seed 7 at rate 0.4 must inject at least one failure"
        );
        assert_eq!(run.spans.len(), 16, "every task still completes");
        for s in &run.spans {
            assert_eq!(s.outcome, AttemptOutcome::Success);
        }
        // Each failed attempt has a matching later, higher-numbered
        // winning or wasted attempt for the same task.
        for w in &run.wasted {
            assert_eq!(w.outcome, AttemptOutcome::Failed);
            let winner = &run.spans[w.task];
            assert!(winner.attempt > w.attempt);
            assert!(winner.finished_s > w.finished_s);
        }
        assert!(
            run.makespan_s > baseline.makespan_s,
            "re-execution costs wall-clock"
        );
        assert!(run.faults.wasted_slot_s > 0.0);
    }

    #[test]
    fn certain_failure_exhausts_attempts() {
        let c = Cluster::homogeneous(CoreKind::Big, 1, 2);
        let load = PhaseLoad::uniform(&set(4, 5.0), &c);
        let faults = failure_faults(1, 1.0, 0);
        let err = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect_err("rate 1.0 can never complete");
        match err {
            PhaseError::AttemptsExhausted { attempts, .. } => {
                assert_eq!(attempts, RecoveryPolicy::hadoop().max_attempts);
            }
            other => panic!("expected AttemptsExhausted, got {other}"),
        }
    }

    #[test]
    fn crash_moves_work_to_surviving_node() {
        let c = Cluster::homogeneous(CoreKind::Big, 2, 2);
        let load = PhaseLoad::uniform(&set(8, 10.0), &c);
        let mut faults = PhaseFaults::inert(2);
        faults.crash_at_s[0] = Some(5.0);
        let run = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect("the surviving node finishes the phase");
        assert_eq!(run.faults.node_crashes, 1);
        assert!(run.faults.killed_attempts >= 1, "node0 had tasks in flight");
        assert_eq!(run.spans.len(), 8);
        for s in &run.spans {
            assert!(
                s.launched_s < 5.0 || s.node == 1,
                "nothing launches on the dead node after the crash"
            );
        }
        for w in &run.wasted {
            assert_eq!(w.outcome, AttemptOutcome::Killed);
            assert_eq!(w.node, 0);
            assert!((w.finished_s - 5.0).abs() < 1e-9, "killed at crash time");
        }
    }

    #[test]
    fn lone_node_crash_errors_cleanly() {
        let c = Cluster::homogeneous(CoreKind::Big, 1, 2);
        let load = PhaseLoad::uniform(&set(6, 10.0), &c);
        let mut faults = PhaseFaults::inert(1);
        faults.crash_at_s[0] = Some(5.0);
        let err = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect_err("zero live slots cannot finish the phase");
        match err {
            PhaseError::NoUsableSlots { pending } => assert_eq!(pending, 6),
            other => panic!("expected NoUsableSlots, got {other}"),
        }
    }

    #[test]
    fn dead_at_start_cluster_errors_cleanly() {
        let c = Cluster::homogeneous(CoreKind::Big, 2, 2);
        let load = PhaseLoad::uniform(&set(3, 1.0), &c);
        let mut faults = PhaseFaults::inert(2);
        faults.dead_at_start = vec![true, true];
        let err = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect_err("no live nodes at phase start");
        assert_eq!(err, PhaseError::NoUsableSlots { pending: 3 });
    }

    /// Two healthy-node slots plus a 4x-degraded straggler node.
    fn straggler_scenario(speculation: bool) -> Result<PhaseRun, PhaseError> {
        let c = Cluster::homogeneous(CoreKind::Big, 2, 2);
        let load = PhaseLoad::uniform(&set(4, 10.0), &c);
        let mut faults = PhaseFaults::inert(2);
        faults.slowdown[1] = 4.0;
        faults.policy.speculation = speculation;
        run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
    }

    #[test]
    fn speculation_rescues_straggler_tasks() {
        let slow = straggler_scenario(false).expect("stragglers still finish");
        let spec = straggler_scenario(true).expect("speculation still finishes");
        assert!(spec.faults.speculative_launched >= 1);
        assert!(spec.faults.speculative_wins >= 1);
        assert_eq!(
            spec.faults.cancelled_attempts, spec.faults.speculative_wins,
            "every win cancels exactly the one losing rival"
        );
        assert!(
            spec.makespan_s < 0.7 * slow.makespan_s,
            "backups on the fast node must beat the 4x straggler: {} vs {}",
            spec.makespan_s,
            slow.makespan_s
        );
        // Exactly one winner per task, no duplicate outputs.
        assert_eq!(spec.spans.len(), 4);
        for (i, s) in spec.spans.iter().enumerate() {
            assert_eq!(s.task, i);
            assert_eq!(s.outcome, AttemptOutcome::Success);
        }
        for w in &spec.wasted {
            assert_eq!(w.outcome, AttemptOutcome::Cancelled);
        }
    }

    #[test]
    fn slot_stats_stay_consistent_under_cancellation() {
        let spec = straggler_scenario(true).expect("speculation still finishes");
        assert!(spec.slots.peak_in_use <= spec.slots.capacity);

        // The timeline (winners + wasted) must drain every slot it opens,
        // even though losing attempts were cancelled mid-flight.
        let c = Cluster::homogeneous(CoreKind::Big, 2, 2);
        let mut tl = ClusterTimeline::new(&c);
        tl.extend("map", 0.0, &spec);
        for node in 0..2 {
            let steps = tl.active_steps(node);
            assert_eq!(steps.last().expect("steps end").1, 0, "all slots drain");
        }

        // absorb() stays monotone when a faulty phase's stats fold in.
        let mut total = SlotStats::default();
        total.absorb(&spec.slots);
        let before = total;
        total.absorb(&SlotStats::default());
        assert_eq!(total, before, "absorbing zeroes is a no-op");
        assert_eq!(total.capacity, spec.slots.capacity);
        assert_eq!(total.peak_in_use, spec.slots.peak_in_use);
    }

    #[test]
    fn wasted_spans_never_outlive_the_makespan() {
        let c = Cluster::homogeneous(CoreKind::Big, 2, 2);
        let load = PhaseLoad::uniform(&set(12, 8.0), &c);
        let mut faults = failure_faults(2, 0.3, 11);
        faults.slowdown[1] = 2.5;
        faults.crash_at_s[1] = Some(30.0);
        let run = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect("node0 survives to finish the phase");
        for w in &run.wasted {
            assert!(
                w.finished_s <= run.makespan_s + 1e-9,
                "wasted attempt outlives the makespan: {} > {}",
                w.finished_s,
                run.makespan_s
            );
            assert_ne!(w.outcome, AttemptOutcome::Success);
        }
        let expected: f64 = run.wasted.iter().map(|w| w.finished_s - w.launched_s).sum();
        assert!((run.faults.wasted_slot_s - expected).abs() < 1e-6);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let c = Cluster::homogeneous(CoreKind::Big, 2, 2);
        let load = PhaseLoad::uniform(&set(12, 8.0), &c);
        let mut faults = failure_faults(2, 0.3, 11);
        faults.slowdown[1] = 2.5;
        let a = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect("recovery completes");
        let b = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect("recovery completes");
        assert_eq!(a, b, "same plan, same run, bit for bit");
    }

    #[test]
    fn faulty_trace_labels_attempts_and_outcomes() {
        let c = Cluster::homogeneous(CoreKind::Big, 2, 2);
        let load = PhaseLoad::uniform(&set(8, 10.0), &c);
        let mut faults = failure_faults(2, 0.4, 7);
        faults.crash_at_s[1] = Some(12.0);
        let run =
            run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults)).expect("node0 survives");
        let mut tl = ClusterTimeline::new(&c);
        tl.extend("map", 0.0, &run);
        let json = tl.to_chrome_trace_json();
        assert!(
            json.contains("\"outcome\":\""),
            "wasted attempts are labelled in the trace"
        );
        assert!(
            json.contains("\"attempt\":"),
            "re-executions carry their attempt number"
        );
        // Fault-free spans keep the legacy arg set.
        let clean = run_phase(&c, &load, &mut FifoAnySlot);
        let mut tl = ClusterTimeline::new(&c);
        tl.extend("map", 0.0, &clean);
        let json = tl.to_chrome_trace_json();
        assert!(!json.contains("\"outcome\""));
        assert!(!json.contains("\"attempt\""));
    }

    #[test]
    fn blacklisted_node_receives_no_new_attempts() {
        // With blacklist_after = 1, the node hosting the very first
        // failure is blacklisted on the spot; the guard protecting the
        // last usable node keeps the other node schedulable forever, so
        // exactly one node is blacklisted and it is identifiable from
        // the earliest Failed span.
        let c = Cluster::homogeneous(CoreKind::Big, 2, 1);
        let load = PhaseLoad::uniform(&set(10, 5.0), &c);
        let mut faults = failure_faults(2, 0.35, 3);
        faults.policy.blacklist_after = 1;
        let run = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect("seed 3 at rate 0.35 recovers");
        assert!(
            run.faults.failed_attempts > 0,
            "seed 3 must inject failures"
        );
        assert_eq!(
            run.faults.blacklisted_nodes, 1,
            "last usable node is spared"
        );
        let first = run
            .wasted
            .iter()
            .filter(|w| w.outcome == AttemptOutcome::Failed)
            .min_by(|a, b| a.finished_s.total_cmp(&b.finished_s))
            .expect("failures were injected");
        for s in run.spans.iter().chain(&run.wasted) {
            assert!(
                s.node != first.node || s.launched_s < first.finished_s + 1e-9,
                "node {} blacklisted at {} but got a launch at {}",
                first.node,
                first.finished_s,
                s.launched_s
            );
        }
    }

    use hhsim_faults::{LinkWindow, PhaseDomains};

    /// A 4-node, 1-slot-per-node cluster over two racks (node % 2),
    /// with a reduce-like load and a fetch plan mapping map outputs to
    /// holders. `map_replicas` follows HDFS: the holder is always the
    /// first replica.
    fn fetch_scenario() -> (Cluster, PhaseLoad, FetchPlan) {
        let c = Cluster::homogeneous(CoreKind::Big, 4, 1);
        let load = PhaseLoad::uniform(&set(4, 10.0), &c);
        let plan = FetchPlan {
            holders: vec![0, 0, 1, 3],
            map_replicas: vec![vec![0, 2], vec![0, 2], vec![1, 3], vec![3, 1]],
            topology: Topology::racked(2, 1.0),
            read_seconds: [0.0, 2.0, 6.0],
            map_timing: vec![
                NodeTiming {
                    task_seconds: 3.0,
                    overhead_seconds: 0.1,
                };
                4
            ],
        };
        (c, load, plan)
    }

    #[test]
    fn rack_crash_markers_count_and_annotate() {
        let c = Cluster::homogeneous(CoreKind::Big, 4, 1);
        let load = PhaseLoad::uniform(&set(8, 5.0), &c);
        let mut faults = PhaseFaults::inert(4);
        // Rack 1 = nodes {1, 3}; the ToR dies at t=6 taking both down.
        faults.domains = PhaseDomains {
            racks: 2,
            rack_crash_at_s: vec![None, Some(6.0)],
            link_degraded: vec![None, None],
        };
        faults.crash_at_s[1] = Some(6.0);
        faults.crash_at_s[3] = Some(6.0);
        let run = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect("rack 0 survives to finish the phase");
        assert_eq!(run.faults.rack_crashes, 1, "one whole-rack outage");
        assert_eq!(run.faults.node_crashes, 2);
        assert_eq!(
            run.annotations,
            vec![(6.0, String::from("rack-crash:1"))],
            "the outage is annotated once, at crash time"
        );
        for s in &run.spans {
            assert!(
                s.launched_s < 6.0 || s.node % 2 == 0,
                "nothing launches in the dead rack after the crash"
            );
        }
        // The annotation rides into the chrome trace as an instant
        // event; clean runs carry none.
        let mut tl = ClusterTimeline::new(&c);
        tl.extend("map", 0.0, &run);
        let json = tl.to_chrome_trace_json();
        assert!(json.contains("\"name\":\"rack-crash:1\""));
        assert!(json.contains("\"ph\":\"i\""));
        let clean = run_phase(&c, &load, &mut FifoAnySlot);
        let mut tl = ClusterTimeline::new(&c);
        tl.extend("map", 0.0, &clean);
        assert!(!tl.to_chrome_trace_json().contains("\"ph\":\"i\""));
    }

    #[test]
    fn rack_blacklisting_never_strands_the_last_rack() {
        let c = Cluster::homogeneous(CoreKind::Big, 4, 1);
        let load = PhaseLoad::uniform(&set(16, 5.0), &c);
        let mut faults = failure_faults(4, 0.3, 9);
        faults.policy.blacklist_after = 1;
        faults.policy.rack_blacklist_after = 1;
        faults.domains = PhaseDomains {
            racks: 2,
            rack_crash_at_s: vec![None, None],
            link_degraded: vec![None, None],
        };
        let run = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect("the spared rack finishes the phase");
        assert!(
            run.faults.failed_attempts > 0,
            "seed 9 must inject failures"
        );
        // The first failure blacklists its node and escalates to its
        // rack; the other rack may lose nodes individually but never the
        // whole rack (last-usable-rack guard), and the last usable node
        // is always spared, so the phase completes.
        assert_eq!(run.faults.racks_blacklisted, 1);
        assert!(run.faults.blacklisted_nodes <= 3);
        assert_eq!(run.spans.len(), 16);
        let dead_rack = run
            .annotations
            .iter()
            .find_map(|(_, a)| a.strip_prefix("rack-blacklisted:"))
            .and_then(|r| r.parse::<usize>().ok())
            .expect("rack blacklist is annotated");
        let (t_black, _) = run.annotations[0];
        for s in run.spans.iter().chain(&run.wasted) {
            assert!(
                s.node % 2 != dead_rack || s.launched_s < t_black + 1e-9,
                "rack {dead_rack} blacklisted at {t_black} but node {} launched at {}",
                s.node,
                s.launched_s
            );
        }
    }

    #[test]
    fn fetch_failure_reexecutes_lost_maps_on_surviving_replicas() {
        let (c, load, plan) = fetch_scenario();
        let mut faults = PhaseFaults::inert(4);
        // Node 0 holds map outputs 0 and 1; it dies mid-shuffle.
        faults.crash_at_s[0] = Some(5.0);
        let run = run_phase_faulty_fetch(&c, &load, &mut FifoAnySlot, Some(&faults), Some(&plan))
            .expect("surviving replicas recover the lost outputs");
        // The in-flight reduce on node 0 is killed; the three on
        // surviving nodes register fetch failures.
        assert_eq!(run.faults.killed_attempts, 1);
        assert_eq!(run.faults.fetch_failures, 3);
        let fetch_failed = run
            .wasted
            .iter()
            .filter(|w| w.outcome == AttemptOutcome::FetchFailed)
            .count() as u64;
        assert_eq!(fetch_failed, run.faults.fetch_failures);
        // Both lost maps re-execute exactly once, as attempt >= 2, on a
        // node the NameNode's surviving replica set justifies: map 0
        // lands on surviving replica holder 2 (node-local), map 1 finds
        // node 2 busy and prices an off-rack read from it.
        assert_eq!(run.faults.reexecuted_maps, 2);
        assert_eq!(run.recovered.len(), 2);
        let tiers: Vec<(usize, LocalityTier)> =
            run.recovered.iter().map(|r| (r.task, r.tier)).collect();
        assert_eq!(
            tiers,
            vec![(0, LocalityTier::NodeLocal), (1, LocalityTier::OffRack)]
        );
        for r in &run.recovered {
            assert_eq!(r.outcome, AttemptOutcome::Recovered);
            assert!(r.attempt >= 2, "a re-execution is never attempt 1");
            assert!(r.node != 0, "never on the dead holder");
            assert!(r.finished_s <= run.makespan_s + 1e-9);
        }
        // Reduces stall on the shuffle barrier until the last lost map
        // has been re-executed.
        let recovery_end = run
            .recovered
            .iter()
            .map(|r| r.finished_s)
            .fold(0.0, f64::max);
        for s in &run.spans {
            assert!(
                s.launched_s < 5.0 || s.launched_s >= recovery_end - 1e-9,
                "reduce launched at {} inside the recovery window",
                s.launched_s
            );
            assert_eq!(s.outcome, AttemptOutcome::Success);
        }
        // The trace vocabulary carries the new outcomes.
        let mut tl = ClusterTimeline::new(&c);
        tl.extend("reduce", 0.0, &run);
        let json = tl.to_chrome_trace_json();
        assert!(json.contains("\"outcome\":\"fetch-failed\""));
        assert!(json.contains("\"outcome\":\"recovered\""));
        // Determinism: same plan, same bytes.
        let again = run_phase_faulty_fetch(&c, &load, &mut FifoAnySlot, Some(&faults), Some(&plan))
            .expect("deterministic");
        assert_eq!(run, again);
    }

    #[test]
    fn all_replicas_gone_is_a_clean_data_lost_error() {
        let (c, load, mut plan) = fetch_scenario();
        // Map 0's input block lives only in rack 0 (nodes 0 and 2) and
        // the whole rack dies: no surviving replica anywhere.
        plan.map_replicas[0] = vec![0, 2];
        let mut faults = PhaseFaults::inert(4);
        faults.crash_at_s[0] = Some(5.0);
        faults.crash_at_s[2] = Some(5.0);
        let err = run_phase_faulty_fetch(&c, &load, &mut FifoAnySlot, Some(&faults), Some(&plan))
            .expect_err("no replica survives");
        assert_eq!(err, PhaseError::DataLost { task: 0 });
        assert!(err.to_string().contains("lost every replica"));
    }

    #[test]
    fn holder_dead_between_phases_recovers_before_reduces_launch() {
        let (c, load, plan) = fetch_scenario();
        let mut faults = PhaseFaults::inert(4);
        faults.dead_at_start[0] = true;
        let run = run_phase_faulty_fetch(&c, &load, &mut FifoAnySlot, Some(&faults), Some(&plan))
            .expect("maps 0 and 1 recover from surviving replicas");
        assert_eq!(run.faults.reexecuted_maps, 2);
        assert_eq!(run.faults.fetch_failures, 0, "no reduce was in flight yet");
        let recovery_end = run
            .recovered
            .iter()
            .map(|r| r.finished_s)
            .fold(0.0, f64::max);
        for s in &run.spans {
            assert!(
                s.launched_s >= recovery_end - 1e-9,
                "every reduce waits out the recovery"
            );
        }
    }

    #[test]
    fn fetch_plan_without_crashes_is_invisible() {
        let (c, load, plan) = fetch_scenario();
        let faults = PhaseFaults::inert(4);
        let with = run_phase_faulty_fetch(&c, &load, &mut FifoAnySlot, Some(&faults), Some(&plan))
            .expect("inert faults complete");
        let without = run_phase_faulty(&c, &load, &mut FifoAnySlot, Some(&faults))
            .expect("inert faults complete");
        assert_eq!(with, without, "an unused fetch plan is a perfect no-op");
        assert!(with.recovered.is_empty());
        assert!(with.annotations.is_empty());
    }

    #[test]
    fn link_degradation_taxes_remote_recovery_reads() {
        let (c, load, plan) = fetch_scenario();
        let mut faults = PhaseFaults::inert(4);
        faults.crash_at_s[0] = Some(5.0);
        let healthy =
            run_phase_faulty_fetch(&c, &load, &mut FifoAnySlot, Some(&faults), Some(&plan))
                .expect("healthy links");
        // Map 1's off-rack recovery read lands on node 1 (rack 1); a
        // degradation window over rack 1 multiplies that read by 4.
        faults.domains = PhaseDomains {
            racks: 2,
            rack_crash_at_s: vec![None, None],
            link_degraded: vec![
                None,
                Some(LinkWindow {
                    start_s: 0.0,
                    end_s: 100.0,
                    factor: 4.0,
                }),
            ],
        };
        let degraded =
            run_phase_faulty_fetch(&c, &load, &mut FifoAnySlot, Some(&faults), Some(&plan))
                .expect("degraded links still recover");
        assert!(degraded.faults.link_degraded_attempts >= 1);
        assert_eq!(healthy.faults.link_degraded_attempts, 0);
        assert!(
            degraded.makespan_s > healthy.makespan_s + 1.0,
            "a 4x slower 6 s off-rack read must show in the makespan: {} vs {}",
            degraded.makespan_s,
            healthy.makespan_s
        );
    }

    #[test]
    fn timeline_composes_phases_and_exports() {
        let c = mixed_cluster();
        let load = hetero_load(5, &c);
        let map = run_phase(&c, &load, &mut FifoAnySlot);
        let red = run_phase(
            &c,
            &hetero_load(2, &c),
            &mut KindPreferring {
                preferred: CoreKind::Big,
            },
        );
        let mut tl = ClusterTimeline::new(&c);
        tl.extend("map", 0.0, &map);
        tl.extend("reduce", map.makespan_s, &red);
        assert_eq!(tl.len(), 7);
        assert!((tl.end_s() - (map.makespan_s + red.makespan_s)).abs() < 1e-9);

        let json = tl.to_chrome_trace_json();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"map\""));
        assert!(json.contains("\"cat\":\"reduce\""));
        assert!(json.contains("process_name"));
        assert!(!json.contains(",\n]"), "no trailing comma before array end");

        let csv = tl.utilization_csv();
        assert!(csv.starts_with("node,name,time_s,active_slots"));
        for i in 0..c.nodes.len() {
            let steps = tl.active_steps(i);
            assert_eq!(steps.last().expect("steps end").1, 0, "all slots drain");
            for w in steps.windows(2) {
                assert!(w[1].0 > w[0].0, "strictly increasing change points");
            }
            assert!(tl.busy_slot_seconds(i) >= 0.0);
        }
    }
}
