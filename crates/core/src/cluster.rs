//! Event-driven heterogeneous cluster engine.
//!
//! A [`Cluster`] is a list of first-class [`Node`]s — each with its own
//! core kind and slot count — on which a phase's tasks are placed by a
//! pluggable [`Placement`] policy. Task durations are derived from the
//! node a task actually lands on (a map task is slower on an Atom node
//! than on a Xeon node in the same cluster), which is what lets the
//! paper's §3.5 heterogeneity-aware scheduling run on the simulator
//! instead of only on analytic cost tables.
//!
//! Map (and reduce) tasks run in waves over the cluster's task slots; the
//! wave structure is what makes small HDFS blocks (many short tasks) and
//! very large blocks (few tasks, idle slots) both lose — §3.1.1. Tasks
//! get a deterministic ±8% duration jitter so stragglers lengthen the
//! last wave realistically.
//!
//! Every task records a structured [`TaskSpan`] (queued → launched →
//! finished, node id, slot id, wave); phases compose into a
//! [`ClusterTimeline`] that exports as Chrome-trace-viewer JSON and a
//! per-node utilization CSV, and feeds the energy model a per-node
//! active-slot step function.
//!
//! The homogeneous path (every node identical, [`FifoAnySlot`]
//! placement) is **bit-identical** to the flat `makespan()` slot-pool
//! model this engine replaced: same FIFO grant order, same per-task
//! jitter, same integer-nanosecond clock arithmetic.

use hhsim_arch::CoreKind;
use hhsim_des::{SimTime, Simulation};
use hhsim_energy::MetricKind;
use hhsim_sched::{paper_schedule, CostTable, JobClass};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// A batch of identically-shaped tasks to schedule on the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSet {
    /// Number of tasks.
    pub tasks: usize,
    /// Nominal duration of one task, seconds.
    pub task_seconds: f64,
    /// Per-task fixed overhead (launch, heartbeat), seconds.
    pub overhead_seconds: f64,
}

/// Deterministic per-task jitter factor in `[0.92, 1.08]`.
///
/// Public so out-of-crate oracles (the parity tests) can price tasks with
/// the exact durations the engine uses.
pub fn jitter(task_index: usize) -> f64 {
    // SplitMix-style scramble for a platform-independent pseudo-random.
    let mut x = task_index as u64 + 0x9e37_79b9;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let u = ((x >> 11) as f64) / ((1u64 << 53) as f64);
    0.92 + 0.16 * u
}

/// One machine of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Display name ("xeon0", "atom1", ...).
    pub name: String,
    /// Which side of the big/little divide this node is on.
    pub kind: CoreKind,
    /// Concurrent task slots on this node.
    pub slots: usize,
}

/// A set of first-class nodes tasks are placed on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// The nodes, in placement-preference order (node id = index).
    pub nodes: Vec<Node>,
}

impl Cluster {
    /// `nodes` identical machines of `kind` with `slots` slots each.
    ///
    /// # Panics
    ///
    /// Panics if the cluster would have zero slots.
    pub fn homogeneous(kind: CoreKind, nodes: usize, slots: usize) -> Self {
        assert!(nodes > 0 && slots > 0, "need at least one slot");
        let name = match kind {
            CoreKind::Big => "xeon",
            CoreKind::Little => "atom",
        };
        Cluster {
            nodes: (0..nodes)
                .map(|i| Node {
                    name: format!("{name}{i}"),
                    kind,
                    slots,
                })
                .collect(),
        }
    }

    /// A mixed cluster: `big` Xeon nodes (`big_slots` each) followed by
    /// `little` Atom nodes (`little_slots` each).
    ///
    /// # Panics
    ///
    /// Panics if the cluster would have zero slots.
    pub fn mixed(big: usize, big_slots: usize, little: usize, little_slots: usize) -> Self {
        let mut nodes = Vec::with_capacity(big + little);
        for i in 0..big {
            nodes.push(Node {
                name: format!("xeon{i}"),
                kind: CoreKind::Big,
                slots: big_slots,
            });
        }
        for i in 0..little {
            nodes.push(Node {
                name: format!("atom{i}"),
                kind: CoreKind::Little,
                slots: little_slots,
            });
        }
        let c = Cluster { nodes };
        assert!(c.total_slots() > 0, "need at least one slot");
        c
    }

    /// Slots across all nodes.
    pub fn total_slots(&self) -> usize {
        self.nodes.iter().map(|n| n.slots).sum()
    }

    /// Number of nodes of `kind`.
    pub fn count(&self, kind: CoreKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }
}

/// Nominal per-task timing on one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeTiming {
    /// Nominal duration of one task on this node, seconds.
    pub task_seconds: f64,
    /// Per-task fixed overhead on this node, seconds.
    pub overhead_seconds: f64,
}

/// A phase's work: `tasks` tasks plus the per-node timing they would see.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseLoad {
    /// Number of tasks to drain.
    pub tasks: usize,
    /// Timing per node (indexed by node id; length must match the
    /// cluster).
    pub timing: Vec<NodeTiming>,
}

impl PhaseLoad {
    /// Every node sees the same timing — the homogeneous case.
    pub fn uniform(set: &TaskSet, cluster: &Cluster) -> Self {
        PhaseLoad {
            tasks: set.tasks,
            timing: vec![
                NodeTiming {
                    task_seconds: set.task_seconds,
                    overhead_seconds: set.overhead_seconds,
                };
                cluster.nodes.len()
            ],
        }
    }

    /// Timing chosen per node kind — the heterogeneous case.
    pub fn by_kind(tasks: usize, big: NodeTiming, little: NodeTiming, cluster: &Cluster) -> Self {
        PhaseLoad {
            tasks,
            timing: cluster
                .nodes
                .iter()
                .map(|n| match n.kind {
                    CoreKind::Big => big,
                    CoreKind::Little => little,
                })
                .collect(),
        }
    }
}

/// Chooses the node for the task at the head of the FIFO queue.
///
/// The engine is work-conserving: `place` is only called when at least
/// one slot is free, and must return a node with a free slot.
pub trait Placement {
    /// Node id for `task`; `free[n]` is the free-slot count of node `n`.
    fn place(&mut self, task: usize, cluster: &Cluster, free: &[usize]) -> usize;

    /// Policy label for traces and reports.
    fn name(&self) -> &'static str;
}

/// Baseline: first node with a free slot, in node-id order. On a
/// homogeneous cluster this reproduces the flat slot-pool model exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoAnySlot;

impl Placement for FifoAnySlot {
    fn place(&mut self, _task: usize, _cluster: &Cluster, free: &[usize]) -> usize {
        free.iter().position(|&f| f > 0).expect("a slot is free")
    }

    fn name(&self) -> &'static str {
        "fifo-any"
    }
}

/// Heterogeneity-aware placement: prefer free slots on the node kind the
/// paper's scheduler allocates for the job, spill onto the other kind
/// only when the preferred kind is saturated (work-conserving, so adding
/// a node can never slow a phase down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindPreferring {
    /// The node kind tasks should land on first.
    pub preferred: CoreKind,
}

impl KindPreferring {
    /// The paper's §3.5 pseudo-code: compute-bound → little, I/O-bound →
    /// big, hybrid by goal ([`paper_schedule`]).
    pub fn for_class(class: JobClass, goal: MetricKind) -> Self {
        KindPreferring {
            preferred: paper_schedule(class, goal).kind,
        }
    }

    /// Characterization-driven: the kind of [`CostTable::optimal`] under
    /// `goal` (falls back to big on an empty table).
    pub fn from_cost_table(table: &CostTable, goal: MetricKind) -> Self {
        KindPreferring {
            preferred: table
                .optimal(goal)
                .map(|(a, _)| a.kind)
                .unwrap_or(CoreKind::Big),
        }
    }
}

impl Placement for KindPreferring {
    fn place(&mut self, _task: usize, cluster: &Cluster, free: &[usize]) -> usize {
        free.iter()
            .enumerate()
            .position(|(n, &f)| f > 0 && cluster.nodes[n].kind == self.preferred)
            .or_else(|| free.iter().position(|&f| f > 0))
            .expect("a slot is free")
    }

    fn name(&self) -> &'static str {
        match self.preferred {
            CoreKind::Big => "prefer-big",
            CoreKind::Little => "prefer-little",
        }
    }
}

/// Slot admission counters of one engine run (the cluster-level analogue
/// of [`hhsim_des::PoolStats`]), surfaced through `Measurement` so
/// figures can report slot utilization and queueing delay per phase.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotStats {
    /// Total slots across the cluster.
    pub capacity: usize,
    /// Largest number of slots simultaneously busy.
    pub peak_in_use: usize,
    /// Cumulative seconds tasks spent waiting for a slot.
    pub total_wait_s: f64,
    /// Tasks that had to wait (launched after the phase start).
    pub tasks_queued: u64,
    /// Longest the pending queue ever got.
    pub max_queue_len: usize,
}

impl SlotStats {
    /// Folds another phase's counters into this one (chained jobs).
    pub fn absorb(&mut self, other: &SlotStats) {
        self.capacity = self.capacity.max(other.capacity);
        self.peak_in_use = self.peak_in_use.max(other.peak_in_use);
        self.total_wait_s += other.total_wait_s;
        self.tasks_queued += other.tasks_queued;
        self.max_queue_len = self.max_queue_len.max(other.max_queue_len);
    }

    /// Mean queueing delay per task that waited, seconds.
    pub fn mean_wait_s(&self) -> f64 {
        if self.tasks_queued == 0 {
            0.0
        } else {
            self.total_wait_s / self.tasks_queued as f64
        }
    }
}

/// One task's structured trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// Phase label ("map", "reduce", possibly suffixed per chained job).
    pub phase: String,
    /// Task index within its phase.
    pub task: usize,
    /// Node the task ran on.
    pub node: usize,
    /// Slot within the node.
    pub slot: usize,
    /// 1-based count of tasks this slot has run (wave number).
    pub wave: usize,
    /// When the task entered the queue, seconds.
    pub queued_s: f64,
    /// When it got a slot, seconds.
    pub launched_s: f64,
    /// When it finished, seconds.
    pub finished_s: f64,
}

/// Result of draining one [`PhaseLoad`] through the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRun {
    /// Wall-clock seconds from phase start to last task completion.
    pub makespan_s: f64,
    /// Per-task spans, in task order, with phase-relative times and an
    /// empty phase label (filled in by [`ClusterTimeline::extend`]).
    pub spans: Vec<TaskSpan>,
    /// Slot admission counters.
    pub slots: SlotStats,
}

/// Mutable state shared between the completion events of one run.
#[derive(Debug)]
struct EngineState {
    free: Vec<usize>,
    slot_busy: Vec<Vec<bool>>,
    slot_waves: Vec<Vec<usize>>,
    queue: VecDeque<usize>,
    in_use: usize,
    freed: Vec<(usize, usize)>,
    max_finish: SimTime,
    stats: SlotStats,
}

/// Drains `load` over `cluster` under `placement`, recording a span per
/// task. All tasks are queued at phase start (time zero) in task order;
/// a freed slot always goes to the head of the queue (FIFO admission,
/// placement only chooses *which* free slot).
///
/// # Panics
///
/// Panics if the cluster has no slots or `load.timing` does not match
/// the cluster's node count.
pub fn run_phase(cluster: &Cluster, load: &PhaseLoad, placement: &mut dyn Placement) -> PhaseRun {
    let capacity = cluster.total_slots();
    assert!(capacity > 0, "need at least one slot");
    assert_eq!(
        load.timing.len(),
        cluster.nodes.len(),
        "one timing entry per node"
    );
    let mut stats = SlotStats {
        capacity,
        ..SlotStats::default()
    };
    if load.tasks == 0 {
        return PhaseRun {
            makespan_s: 0.0,
            spans: Vec::new(),
            slots: stats,
        };
    }

    let mut sim = Simulation::new();
    let mut spans: Vec<Option<TaskSpan>> = vec![None; load.tasks];
    stats.max_queue_len = load.tasks.saturating_sub(capacity);
    let state = Rc::new(RefCell::new(EngineState {
        free: cluster.nodes.iter().map(|n| n.slots).collect(),
        slot_busy: cluster.nodes.iter().map(|n| vec![false; n.slots]).collect(),
        slot_waves: cluster.nodes.iter().map(|n| vec![0; n.slots]).collect(),
        queue: (0..load.tasks).collect(),
        in_use: 0,
        freed: Vec::new(),
        max_finish: SimTime::ZERO,
        stats,
    }));

    // Launches queued tasks while slots are free. Runs synchronously at
    // phase start and again after every completion event, so grant order
    // is FIFO at identical virtual times — exactly the slot-pool
    // semantics of the flat model this engine replaced.
    let dispatch = |sim: &mut Simulation,
                    state: &Rc<RefCell<EngineState>>,
                    placement: &mut dyn Placement,
                    spans: &mut Vec<Option<TaskSpan>>| {
        loop {
            let task = {
                let st = state.borrow();
                if st.queue.is_empty() || st.free.iter().all(|&f| f == 0) {
                    break;
                }
                *st.queue.front().expect("non-empty queue")
            };
            let node = placement.place(task, cluster, &state.borrow().free);
            let now = sim.now();
            let (slot, wave, dur) = {
                let mut st = state.borrow_mut();
                assert!(st.free[node] > 0, "placement chose a busy node");
                st.queue.pop_front();
                st.free[node] -= 1;
                st.in_use += 1;
                let in_use = st.in_use;
                st.stats.peak_in_use = st.stats.peak_in_use.max(in_use);
                let slot = st.slot_busy[node]
                    .iter()
                    .position(|b| !b)
                    .expect("free slot exists on chosen node");
                st.slot_busy[node][slot] = true;
                st.slot_waves[node][slot] += 1;
                let wave = st.slot_waves[node][slot];
                if !now.is_zero() {
                    st.stats.tasks_queued += 1;
                    st.stats.total_wait_s += now.as_secs_f64();
                }
                let t = &load.timing[node];
                let dur =
                    SimTime::from_secs_f64(t.task_seconds * jitter(task) + t.overhead_seconds);
                (slot, wave, dur)
            };
            let finish = now + dur;
            spans[task] = Some(TaskSpan {
                phase: String::new(),
                task,
                node,
                slot,
                wave,
                queued_s: 0.0,
                launched_s: now.as_secs_f64(),
                finished_s: finish.as_secs_f64(),
            });
            let state = state.clone();
            sim.schedule_in(dur, move |sim| {
                let mut st = state.borrow_mut();
                st.free[node] += 1;
                st.in_use -= 1;
                st.slot_busy[node][slot] = false;
                st.freed.push((node, slot));
                if sim.now() > st.max_finish {
                    st.max_finish = sim.now();
                }
            });
        }
    };

    dispatch(&mut sim, &state, placement, &mut spans);
    // Drive the calendar one event at a time so the placement policy
    // (a &mut borrow that cannot move into event closures) runs between
    // events; `Simulation::run()`'s final clock is the last completion.
    while sim.step() {
        dispatch(&mut sim, &state, placement, &mut spans);
    }

    let st = Rc::try_unwrap(state)
        .expect("all completion events have run")
        .into_inner();
    PhaseRun {
        makespan_s: st.max_finish.as_secs_f64(),
        spans: spans
            .into_iter()
            .map(|s| s.expect("every task was launched"))
            .collect(),
        slots: st.stats,
    }
}

/// Flat wall-clock of a homogeneous phase — the engine's answer to the
/// old `makespan(set, slots)` question (same FIFO waves, same jitter).
pub fn homogeneous_makespan(set: &TaskSet, nodes: usize, slots: usize, kind: CoreKind) -> f64 {
    let cluster = Cluster::homogeneous(kind, nodes, slots);
    run_phase(
        &cluster,
        &PhaseLoad::uniform(set, &cluster),
        &mut FifoAnySlot,
    )
    .makespan_s
}

/// Node metadata echoed into exports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMeta {
    /// Node display name.
    pub name: String,
    /// "Xeon" or "Atom".
    pub kind: String,
    /// Slot count.
    pub slots: usize,
}

/// The per-task timeline of a whole run: successive phases' spans
/// shifted onto one absolute clock.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterTimeline {
    /// The cluster's nodes (index = `TaskSpan::node`).
    pub nodes: Vec<NodeMeta>,
    /// All spans, in append order (phases in execution order, tasks in
    /// task order within a phase).
    pub spans: Vec<TaskSpan>,
}

impl ClusterTimeline {
    /// An empty timeline over `cluster`.
    pub fn new(cluster: &Cluster) -> Self {
        ClusterTimeline {
            nodes: cluster
                .nodes
                .iter()
                .map(|n| NodeMeta {
                    name: n.name.clone(),
                    kind: n.kind.to_string(),
                    slots: n.slots,
                })
                .collect(),
            spans: Vec::new(),
        }
    }

    /// Appends a phase's spans, labelled `phase`, shifted by `offset_s`.
    pub fn extend(&mut self, phase: &str, offset_s: f64, run: &PhaseRun) {
        for s in &run.spans {
            let mut s = s.clone();
            s.phase = phase.to_string();
            s.queued_s += offset_s;
            s.launched_s += offset_s;
            s.finished_s += offset_s;
            self.spans.push(s);
        }
    }

    /// Latest task completion, seconds.
    pub fn end_s(&self) -> f64 {
        self.spans.iter().map(|s| s.finished_s).fold(0.0, f64::max)
    }

    /// Step function of busy slots on `node`: `(time, active)` points at
    /// every change, starting at `(0, 0)`. Feeds the utilization-driven
    /// power model.
    pub fn active_steps(&self, node: usize) -> Vec<(f64, usize)> {
        let mut events: Vec<(f64, i64)> = Vec::new();
        for s in self.spans.iter().filter(|s| s.node == node) {
            events.push((s.launched_s, 1));
            events.push((s.finished_s, -1));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut steps = vec![(0.0, 0usize)];
        let mut active = 0i64;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                active += events[i].1;
                i += 1;
            }
            let a = usize::try_from(active.max(0)).expect("active fits usize");
            if t == 0.0 {
                steps[0].1 = a;
            } else {
                steps.push((t, a));
            }
        }
        steps
    }

    /// Busy slot-seconds on `node` (integral of the active-slot curve).
    pub fn busy_slot_seconds(&self, node: usize) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.node == node)
            .map(|s| s.finished_s - s.launched_s)
            .sum()
    }

    /// Chrome-trace-viewer JSON (`chrome://tracing`, Perfetto): one `X`
    /// event per task span, `pid` = node, `tid` = slot, timestamps in
    /// microseconds, plus process-name metadata per node. Output is
    /// deterministic: spans are emitted in append order with fixed
    /// 3-decimal microsecond formatting.
    pub fn to_chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (pid, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{} ({} x{})\"}}}},",
                n.name, n.kind, n.slots
            );
        }
        for s in &self.spans {
            let ts = s.launched_s * 1e6;
            let dur = (s.finished_s - s.launched_s) * 1e6;
            let wait = (s.launched_s - s.queued_s) * 1e6;
            let _ = writeln!(
                out,
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\
                 \"name\":\"{}-{}\",\"cat\":\"{}\",\
                 \"args\":{{\"task\":{},\"wave\":{},\"wait_us\":{wait:.3}}}}},",
                s.node, s.slot, s.phase, s.task, s.phase, s.task, s.wave
            );
        }
        // Trailing comma is invalid JSON; close with a sentinel metadata
        // event instead of tracking "first".
        out.push_str("{\"ph\":\"M\",\"pid\":0,\"name\":\"trace_end\",\"args\":{}}\n]}\n");
        out
    }

    /// Per-node utilization as CSV: `node,name,time_s,active_slots` step
    /// rows (one per change point).
    pub fn utilization_csv(&self) -> String {
        let mut out = String::from("node,name,time_s,active_slots\n");
        for (i, n) in self.nodes.iter().enumerate() {
            for (t, a) in self.active_steps(i) {
                let _ = writeln!(out, "{i},{},{t:.6},{a}", n.name);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tasks: usize, secs: f64) -> TaskSet {
        TaskSet {
            tasks,
            task_seconds: secs,
            overhead_seconds: 0.0,
        }
    }

    fn makespan(set: &TaskSet, slots: usize) -> f64 {
        homogeneous_makespan(set, 1, slots, CoreKind::Big)
    }

    #[test]
    fn single_wave_equals_longest_task() {
        let t = makespan(&set(4, 10.0), 8);
        assert!((9.2..=10.8).contains(&t), "one wave with jitter, got {t}");
    }

    #[test]
    fn waves_stack() {
        let t1 = makespan(&set(8, 10.0), 8);
        let t3 = makespan(&set(24, 10.0), 8);
        assert!(t3 > 2.7 * t1, "three waves must take ~3x one wave");
        assert!(t3 < 3.3 * t1);
    }

    #[test]
    fn overhead_charges_per_task() {
        let no = makespan(&set(16, 10.0), 4);
        let with = makespan(
            &TaskSet {
                tasks: 16,
                task_seconds: 10.0,
                overhead_seconds: 2.0,
            },
            4,
        );
        // 4 waves x 2 s extra per task in the critical path.
        assert!((with - no - 8.0).abs() < 1.0, "got {}", with - no);
    }

    #[test]
    fn more_slots_cannot_be_slower() {
        let few = makespan(&set(20, 5.0), 2);
        let many = makespan(&set(20, 5.0), 10);
        assert!(many < few);
    }

    #[test]
    fn node_split_does_not_change_homogeneous_makespan() {
        // 1 node x 8 slots and 4 nodes x 2 slots are the same flat pool
        // when every node is identical.
        let s = set(20, 5.0);
        assert_eq!(
            homogeneous_makespan(&s, 1, 8, CoreKind::Big),
            homogeneous_makespan(&s, 4, 2, CoreKind::Big),
        );
    }

    #[test]
    fn empty_set_is_free() {
        assert_eq!(makespan(&set(0, 5.0), 4), 0.0);
    }

    #[test]
    fn deterministic() {
        let a = makespan(&set(37, 3.3), 5);
        let b = makespan(&set(37, 3.3), 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = makespan(&set(1, 1.0), 0);
    }

    fn mixed_cluster() -> Cluster {
        Cluster::mixed(1, 2, 2, 2)
    }

    fn hetero_load(tasks: usize, cluster: &Cluster) -> PhaseLoad {
        PhaseLoad::by_kind(
            tasks,
            NodeTiming {
                task_seconds: 4.0,
                overhead_seconds: 0.0,
            },
            NodeTiming {
                task_seconds: 10.0,
                overhead_seconds: 0.0,
            },
            cluster,
        )
    }

    #[test]
    fn duration_follows_the_landing_node() {
        let c = mixed_cluster();
        let run = run_phase(&c, &hetero_load(4, &c), &mut FifoAnySlot);
        for s in &run.spans {
            let d = s.finished_s - s.launched_s;
            match c.nodes[s.node].kind {
                CoreKind::Big => assert!((3.5..=4.5).contains(&d), "big task took {d}"),
                CoreKind::Little => assert!((9.0..=11.0).contains(&d), "little task took {d}"),
            }
        }
    }

    #[test]
    fn kind_preferring_lands_on_preferred_kind_first() {
        let c = mixed_cluster();
        let mut p = KindPreferring {
            preferred: CoreKind::Little,
        };
        // 4 little slots... only 2 — cluster is 1 big x2 + 2 little x2.
        let run = run_phase(&c, &hetero_load(4, &c), &mut p);
        let on_little = run
            .spans
            .iter()
            .filter(|s| c.nodes[s.node].kind == CoreKind::Little)
            .count();
        assert_eq!(on_little, 4, "all four fit on the four little slots");
    }

    #[test]
    fn kind_preferring_spills_when_saturated() {
        let c = mixed_cluster();
        let mut p = KindPreferring {
            preferred: CoreKind::Little,
        };
        let run = run_phase(&c, &hetero_load(6, &c), &mut p);
        let on_big = run
            .spans
            .iter()
            .filter(|s| c.nodes[s.node].kind == CoreKind::Big)
            .count();
        assert!(on_big > 0, "work-conserving spill onto the big node");
    }

    #[test]
    fn placement_constructors_wire_to_sched() {
        let p = KindPreferring::for_class(JobClass::Compute, MetricKind::Edp);
        assert_eq!(p.preferred, CoreKind::Little);
        let p = KindPreferring::for_class(JobClass::Io, MetricKind::Edp);
        assert_eq!(p.preferred, CoreKind::Big);
        assert_eq!(
            KindPreferring::from_cost_table(&CostTable::new(), MetricKind::Edp).preferred,
            CoreKind::Big,
            "empty table falls back to big"
        );
    }

    #[test]
    fn spans_are_complete_and_ordered() {
        let c = Cluster::homogeneous(CoreKind::Big, 2, 2);
        let s = set(9, 3.0);
        let run = run_phase(&c, &PhaseLoad::uniform(&s, &c), &mut FifoAnySlot);
        assert_eq!(run.spans.len(), 9);
        for (i, sp) in run.spans.iter().enumerate() {
            assert_eq!(sp.task, i);
            assert!(sp.finished_s > sp.launched_s);
            assert!(sp.launched_s >= sp.queued_s);
            assert!(sp.wave >= 1);
            assert!(sp.node < 2 && sp.slot < 2);
        }
        let end = run.spans.iter().map(|s| s.finished_s).fold(0.0, f64::max);
        assert_eq!(end, run.makespan_s);
    }

    #[test]
    fn slot_stats_count_queueing() {
        let c = Cluster::homogeneous(CoreKind::Big, 1, 2);
        let s = set(5, 2.0);
        let run = run_phase(&c, &PhaseLoad::uniform(&s, &c), &mut FifoAnySlot);
        assert_eq!(run.slots.capacity, 2);
        assert_eq!(run.slots.peak_in_use, 2);
        assert_eq!(run.slots.tasks_queued, 3, "tasks beyond the first wave");
        assert_eq!(run.slots.max_queue_len, 3);
        assert!(run.slots.total_wait_s > 0.0);
        assert!(run.slots.mean_wait_s() > 0.0);
    }

    #[test]
    fn timeline_composes_phases_and_exports() {
        let c = mixed_cluster();
        let load = hetero_load(5, &c);
        let map = run_phase(&c, &load, &mut FifoAnySlot);
        let red = run_phase(
            &c,
            &hetero_load(2, &c),
            &mut KindPreferring {
                preferred: CoreKind::Big,
            },
        );
        let mut tl = ClusterTimeline::new(&c);
        tl.extend("map", 0.0, &map);
        tl.extend("reduce", map.makespan_s, &red);
        assert_eq!(tl.spans.len(), 7);
        assert!((tl.end_s() - (map.makespan_s + red.makespan_s)).abs() < 1e-9);

        let json = tl.to_chrome_trace_json();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"map\""));
        assert!(json.contains("\"cat\":\"reduce\""));
        assert!(json.contains("process_name"));
        assert!(!json.contains(",\n]"), "no trailing comma before array end");

        let csv = tl.utilization_csv();
        assert!(csv.starts_with("node,name,time_s,active_slots"));
        for i in 0..c.nodes.len() {
            let steps = tl.active_steps(i);
            assert_eq!(steps.last().expect("steps end").1, 0, "all slots drain");
            for w in steps.windows(2) {
                assert!(w[1].0 > w[0].0, "strictly increasing change points");
            }
            assert!(tl.busy_slot_seconds(i) >= 0.0);
        }
    }
}
