//! Discrete-event cluster scheduling: task durations → phase wall-clock.
//!
//! Map (and reduce) tasks run in waves over the cluster's task slots; the
//! wave structure is what makes small HDFS blocks (many short tasks) and
//! very large blocks (few tasks, idle slots) both lose — §3.1.1. Tasks get
//! a deterministic ±8% duration jitter so stragglers lengthen the last
//! wave realistically.

use hhsim_des::{SimTime, Simulation, SlotPool};
use std::cell::RefCell;
use std::rc::Rc;

/// A batch of identically-shaped tasks to schedule on a slot pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSet {
    /// Number of tasks.
    pub tasks: usize,
    /// Nominal duration of one task, seconds.
    pub task_seconds: f64,
    /// Per-task fixed overhead (launch, heartbeat), seconds.
    pub overhead_seconds: f64,
}

/// Deterministic per-task jitter factor in `[0.92, 1.08]`.
fn jitter(task_index: usize) -> f64 {
    // SplitMix-style scramble for a platform-independent pseudo-random.
    let mut x = task_index as u64 + 0x9e37_79b9;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let u = ((x >> 11) as f64) / ((1u64 << 53) as f64);
    0.92 + 0.16 * u
}

/// Wall-clock seconds to drain `set` over `slots` parallel slots, computed
/// with the discrete-event kernel.
///
/// # Panics
///
/// Panics if `slots` is zero.
pub fn makespan(set: &TaskSet, slots: usize) -> f64 {
    assert!(slots > 0, "need at least one slot");
    if set.tasks == 0 {
        return 0.0;
    }
    let mut sim = Simulation::new();
    let pool = SlotPool::shared("slots", slots);
    let end = Rc::new(RefCell::new(SimTime::ZERO));
    for i in 0..set.tasks {
        let dur = SimTime::from_secs_f64(set.task_seconds * jitter(i) + set.overhead_seconds);
        let end = end.clone();
        SlotPool::acquire(&pool, &mut sim, move |sim, guard| {
            sim.schedule_in(dur, move |sim| {
                guard.release(sim);
                let mut e = end.borrow_mut();
                if sim.now() > *e {
                    *e = sim.now();
                }
            });
        });
    }
    sim.run();
    let t = end.borrow().as_secs_f64();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tasks: usize, secs: f64) -> TaskSet {
        TaskSet {
            tasks,
            task_seconds: secs,
            overhead_seconds: 0.0,
        }
    }

    #[test]
    fn single_wave_equals_longest_task() {
        let t = makespan(&set(4, 10.0), 8);
        assert!((9.2..=10.8).contains(&t), "one wave with jitter, got {t}");
    }

    #[test]
    fn waves_stack() {
        let t1 = makespan(&set(8, 10.0), 8);
        let t3 = makespan(&set(24, 10.0), 8);
        assert!(t3 > 2.7 * t1, "three waves must take ~3x one wave");
        assert!(t3 < 3.3 * t1);
    }

    #[test]
    fn overhead_charges_per_task() {
        let no = makespan(&set(16, 10.0), 4);
        let with = makespan(
            &TaskSet {
                tasks: 16,
                task_seconds: 10.0,
                overhead_seconds: 2.0,
            },
            4,
        );
        // 4 waves x 2 s extra per task in the critical path.
        assert!((with - no - 8.0).abs() < 1.0, "got {}", with - no);
    }

    #[test]
    fn more_slots_cannot_be_slower() {
        let few = makespan(&set(20, 5.0), 2);
        let many = makespan(&set(20, 5.0), 10);
        assert!(many < few);
    }

    #[test]
    fn empty_set_is_free() {
        assert_eq!(makespan(&set(0, 5.0), 4), 0.0);
    }

    #[test]
    fn deterministic() {
        let a = makespan(&set(37, 3.3), 5);
        let b = makespan(&set(37, 3.3), 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = makespan(&set(1, 1.0), 0);
    }
}
