//! Flow-fair shuffle contention over the two-tier network topology.
//!
//! The reduce phase's all-to-all shuffle is the traffic pattern a rack
//! fabric actually throttles: every map-side node streams its partition
//! to every reduce-side node at once, and the racks' oversubscribed ToR
//! uplinks become the shared bottleneck the flat
//! `bytes / NIC_bandwidth` model cannot see.
//!
//! This module prices a set of concurrent [`Flow`]s with **max-min
//! flow-fair sharing** (progressive filling): every link — each node's
//! up and down link plus each rack's ToR uplink and downlink — divides
//! its capacity evenly among the flows crossing it, bottleneck links
//! saturate first, and released bandwidth is re-divided among the
//! remaining flows. Rates are piecewise constant between flow
//! completions, so the fluid system is integrated *exactly* on the DES
//! calendar ([`hhsim_des::Simulation`]): one completion event at a
//! time, recomputing shares after each.
//!
//! Everything is deterministic: no randomness, no wall clock, pure
//! `f64` arithmetic in a fixed order.

use hhsim_des::{SimTime, Simulation};
use hhsim_hdfs::Topology;
use std::cell::RefCell;
use std::rc::Rc;

/// One shuffle transfer: `bytes` moving from node `src` to node `dst`.
/// Same-node transfers (`src == dst`) never touch the network and
/// complete at time zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Sending node id.
    pub src: usize,
    /// Receiving node id.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: f64,
}

/// The shared links of a two-tier fabric, flattened into one capacity
/// vector: node up / node down / rack up / rack down.
struct Links {
    caps: Vec<f64>,
    nodes: usize,
    racks: usize,
}

impl Links {
    fn new(topology: &Topology, nodes: usize) -> Self {
        let racks = topology.racks.max(1);
        let mut caps = Vec::with_capacity(2 * nodes + 2 * racks);
        for _ in 0..2 * nodes {
            caps.push(topology.node_bytes_per_s);
        }
        for _ in 0..2 * racks {
            caps.push(topology.uplink_bytes_per_s());
        }
        Links { caps, nodes, racks }
    }

    fn node_up(&self, n: usize) -> usize {
        n
    }

    fn node_down(&self, n: usize) -> usize {
        self.nodes + n
    }

    fn rack_up(&self, r: usize) -> usize {
        2 * self.nodes + r
    }

    fn rack_down(&self, r: usize) -> usize {
        2 * self.nodes + self.racks + r
    }

    /// Link ids a flow crosses: its endpoints' node links, plus both
    /// rack links when the endpoints sit in different racks (intra-rack
    /// traffic turns around inside the ToR switch).
    fn path(&self, f: &Flow) -> Vec<usize> {
        let ra = f.src % self.racks;
        let rb = f.dst % self.racks;
        let mut p = vec![self.node_up(f.src), self.node_down(f.dst)];
        if ra != rb {
            p.push(self.rack_up(ra));
            p.push(self.rack_down(rb));
        }
        p
    }
}

/// Max-min fair rates for the `active` flows over `links` (progressive
/// filling): repeatedly saturate the most-contended link, freeze its
/// flows at the fair share, release their capacity elsewhere.
fn fair_rates(paths: &[Vec<usize>], active: &[bool], links: &Links) -> Vec<f64> {
    let n = paths.len();
    let mut rate = vec![0.0; n];
    let mut frozen: Vec<bool> = active.iter().map(|a| !a).collect();
    let mut cap = links.caps.clone();
    let mut load = vec![0usize; cap.len()];
    for (p, &a) in paths.iter().zip(active) {
        if a {
            for &l in p {
                if let Some(c) = load.get_mut(l) {
                    *c += 1;
                }
            }
        }
    }
    loop {
        // The bottleneck: smallest per-flow share among loaded links.
        let mut bottleneck: Option<(usize, f64)> = None;
        for (l, (&c, &n_flows)) in cap.iter().zip(&load).enumerate() {
            if n_flows == 0 {
                continue;
            }
            let share = c / n_flows as f64;
            if !bottleneck.is_some_and(|(_, s)| share >= s) {
                bottleneck = Some((l, share));
            }
        }
        let Some((bl, share)) = bottleneck else {
            break;
        };
        // Freeze every unfrozen flow crossing the bottleneck at the
        // fair share and release its claim on the rest of its path.
        for (i, p) in paths.iter().enumerate() {
            let is_frozen = frozen.get(i).copied().unwrap_or(true);
            if is_frozen || !p.contains(&bl) {
                continue;
            }
            if let Some(f) = frozen.get_mut(i) {
                *f = true;
            }
            if let Some(r) = rate.get_mut(i) {
                *r = share;
            }
            for &l in p {
                if let Some(c) = cap.get_mut(l) {
                    *c = (*c - share).max(0.0);
                }
                if let Some(c) = load.get_mut(l) {
                    *c = c.saturating_sub(1);
                }
            }
        }
    }
    rate
}

/// Fluid-flow state shared between completion events.
struct FlowState {
    remaining: Vec<f64>,
    active: Vec<bool>,
    rates: Vec<f64>,
    finish_s: Vec<f64>,
    cancelled: Vec<bool>,
    last_t: SimTime,
    live: usize,
}

impl FlowState {
    /// Drains `rate × (now - last_t)` from every active flow and records
    /// finish times for the ones that ran dry.
    fn settle(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.last_t).as_secs_f64();
        self.last_t = now;
        let now_s = now.as_secs_f64();
        for i in 0..self.remaining.len() {
            if !self.active.get(i).copied().unwrap_or(false) {
                continue;
            }
            let rate = self.rates.get(i).copied().unwrap_or(0.0);
            let left = match self.remaining.get_mut(i) {
                Some(r) => {
                    *r = (*r - rate * dt).max(0.0);
                    *r
                }
                None => continue,
            };
            // A flow is done when its residue is negligible against one
            // microsecond of its own rate — ties complete together.
            if left <= rate * 1e-6 {
                if let Some(a) = self.active.get_mut(i) {
                    *a = false;
                }
                if let Some(f) = self.finish_s.get_mut(i) {
                    *f = now_s;
                }
                self.live -= 1;
            }
        }
    }

    /// Seconds until the next active flow completes at current rates.
    fn next_completion_s(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for ((&left, &rate), &a) in self.remaining.iter().zip(&self.rates).zip(&self.active) {
            if !a || rate <= 0.0 {
                continue;
            }
            let dt = left / rate;
            if !best.is_some_and(|b| dt >= b) {
                best = Some(dt);
            }
        }
        best
    }
}

/// Per-flow outcome of a shuffle whose sources can crash mid-transfer:
/// finish (or cancellation) times plus which flows never completed.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcomes {
    /// Time each flow left the fabric, seconds: its completion, or the
    /// crash instant for cancelled flows. Order matches the input.
    pub finish_s: Vec<f64>,
    /// True for flows cancelled because their source node crashed while
    /// they were still transferring.
    pub cancelled: Vec<bool>,
}

/// Finish time in seconds of every flow when all of them start at time
/// zero and share the fabric max-min fairly. Same-node and empty flows
/// finish at `0.0`. Output order matches `flows`.
///
/// The fluid system is exact: rates are recomputed at every completion
/// on a [`Simulation`] calendar, so the result is the closed-form
/// max-min trajectory, independent of any time-step size.
pub fn flow_finish_times(topology: &Topology, nodes: usize, flows: &[Flow]) -> Vec<f64> {
    flow_finish_times_with_crashes(topology, nodes, flows, &[]).finish_s
}

/// [`flow_finish_times`] with crash-cancelled sources: each `(node,
/// at_s)` entry kills `node` at `at_s`, cancelling every flow it is
/// still sourcing *at that instant* on the calendar and re-settling
/// max-min fair shares among the survivors — released bandwidth speeds
/// the remaining flows up from the crash onward. An empty crash list
/// reproduces [`flow_finish_times`] exactly.
pub fn flow_finish_times_with_crashes(
    topology: &Topology,
    nodes: usize,
    flows: &[Flow],
    crashes: &[(usize, f64)],
) -> FlowOutcomes {
    let links = Links::new(topology, nodes.max(1));
    let paths: Vec<Vec<usize>> = flows.iter().map(|f| links.path(f)).collect();
    let srcs: Vec<usize> = flows.iter().map(|f| f.src).collect();
    let mut active: Vec<bool> = Vec::with_capacity(flows.len());
    let mut live = 0usize;
    for f in flows {
        let a = f.src != f.dst && f.bytes > 0.0;
        active.push(a);
        live += usize::from(a);
    }
    let state = Rc::new(RefCell::new(FlowState {
        remaining: flows.iter().map(|f| f.bytes).collect(),
        rates: vec![0.0; flows.len()],
        finish_s: vec![0.0; flows.len()],
        cancelled: vec![false; flows.len()],
        active,
        last_t: SimTime::ZERO,
        live,
    }));

    let mut sim = Simulation::new();
    // Crash events go on the calendar up front: settle the fluid system
    // at the crash instant with the rates that were valid until then,
    // then drop every flow the dead node was still sourcing. The main
    // loop below re-settles fair shares right after, so survivors pick
    // up the released bandwidth from the crash onward.
    for &(node, at_s) in crashes {
        if at_s < 0.0 {
            continue;
        }
        let st2 = state.clone();
        let srcs2 = srcs.clone();
        sim.schedule_in(SimTime::from_secs_f64(at_s), move |sim| {
            let mut st = st2.borrow_mut();
            st.settle(sim.now());
            let now_s = sim.now().as_secs_f64();
            for (i, &src) in srcs2.iter().enumerate() {
                if src != node || !st.active.get(i).copied().unwrap_or(false) {
                    continue;
                }
                if let Some(a) = st.active.get_mut(i) {
                    *a = false;
                }
                if let Some(c) = st.cancelled.get_mut(i) {
                    *c = true;
                }
                if let Some(f) = st.finish_s.get_mut(i) {
                    *f = now_s;
                }
                st.live -= 1;
            }
        });
    }

    // One completion event in flight at a time: recompute fair shares,
    // schedule the earliest finisher, settle when it fires, repeat.
    // Crash events may land before a scheduled completion; the stale
    // completion event then just settles (a no-op drain at the already-
    // recomputed rates) and the loop schedules the true next finisher.
    let schedule_next = |sim: &mut Simulation, state: &Rc<RefCell<FlowState>>| {
        let mut st = state.borrow_mut();
        if st.live == 0 {
            return;
        }
        st.rates = fair_rates(&paths, &st.active, &links);
        let Some(dt) = st.next_completion_s() else {
            return;
        };
        let st2 = state.clone();
        sim.schedule_in(SimTime::from_secs_f64(dt), move |sim| {
            st2.borrow_mut().settle(sim.now());
        });
    };

    schedule_next(&mut sim, &state);
    while sim.step() {
        schedule_next(&mut sim, &state);
    }

    match Rc::try_unwrap(state) {
        Ok(cell) => {
            let st = cell.into_inner();
            FlowOutcomes {
                finish_s: st.finish_s,
                cancelled: st.cancelled,
            }
        }
        // Unreachable: the calendar has drained, so no event closure
        // still holds a clone.
        Err(rc) => {
            let st = rc.borrow();
            FlowOutcomes {
                finish_s: st.finish_s.clone(),
                cancelled: st.cancelled.clone(),
            }
        }
    }
}

/// Contended shuffle-fetch time per reduce task.
///
/// Reducer `r` is pinned to node `r % nodes` (reducers spread evenly),
/// pulls `bytes_per_reducer / nodes` from every node's map output, and
/// all reducers fetch concurrently — the all-to-all pattern that makes
/// the ToR uplinks the shared bottleneck. Returns each reducer's
/// last-flow finish time, in reducer order.
pub fn reduce_fetch_seconds(
    topology: &Topology,
    nodes: usize,
    reducers: usize,
    bytes_per_reducer: f64,
) -> Vec<f64> {
    let nodes = nodes.max(1);
    if reducers == 0 || bytes_per_reducer <= 0.0 {
        return vec![0.0; reducers];
    }
    let per_src = bytes_per_reducer / nodes as f64;
    let mut flows = Vec::with_capacity(reducers * nodes.saturating_sub(1));
    let mut owner = Vec::with_capacity(reducers * nodes.saturating_sub(1));
    for r in 0..reducers {
        let dst = r % nodes;
        for src in 0..nodes {
            if src == dst {
                continue;
            }
            flows.push(Flow {
                src,
                dst,
                bytes: per_src,
            });
            owner.push(r);
        }
    }
    let finish = flow_finish_times(topology, nodes, &flows);
    let mut out = vec![0.0; reducers];
    for (&r, &t) in owner.iter().zip(&finish) {
        if let Some(slot) = out.get_mut(r) {
            if t > *slot {
                *slot = t;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_rack() -> Topology {
        Topology::racked(1, 1.0)
    }

    #[test]
    fn single_flow_runs_at_node_line_rate() {
        let t = one_rack();
        let bytes = 117.0e6; // one second at GigE payload rate
        let times = flow_finish_times(
            &t,
            2,
            &[Flow {
                src: 0,
                dst: 1,
                bytes,
            }],
        );
        assert_eq!(times.len(), 1);
        assert!(
            (times.first().copied().unwrap_or(0.0) - 1.0).abs() < 1e-6,
            "got {times:?}"
        );
    }

    #[test]
    fn same_node_and_empty_flows_are_free() {
        let t = one_rack();
        let times = flow_finish_times(
            &t,
            2,
            &[
                Flow {
                    src: 0,
                    dst: 0,
                    bytes: 1e9,
                },
                Flow {
                    src: 0,
                    dst: 1,
                    bytes: 0.0,
                },
            ],
        );
        assert_eq!(times, vec![0.0, 0.0]);
    }

    #[test]
    fn shared_source_uplink_halves_each_flow() {
        let t = one_rack();
        let bytes = 117.0e6;
        let times = flow_finish_times(
            &t,
            3,
            &[
                Flow {
                    src: 0,
                    dst: 1,
                    bytes,
                },
                Flow {
                    src: 0,
                    dst: 2,
                    bytes,
                },
            ],
        );
        for ft in &times {
            assert!((ft - 2.0).abs() < 1e-5, "fair halves, got {times:?}");
        }
    }

    #[test]
    fn released_bandwidth_speeds_up_the_survivor() {
        // Two flows share node 0's uplink; the short one finishes at
        // t=1 (half rate), after which the long one runs at full rate:
        // 2 units at half rate until t=1 leaves 1 unit, done at t=2... the
        // exact max-min trajectory: finish(long) = 3 units total? long has
        // 2x bytes: t in [0,2]: both at rate/2, short (1x) done at t=2;
        // long has 1x left, full rate, done at t=3.
        let t = one_rack();
        let unit = 117.0e6;
        let times = flow_finish_times(
            &t,
            3,
            &[
                Flow {
                    src: 0,
                    dst: 1,
                    bytes: unit,
                },
                Flow {
                    src: 0,
                    dst: 2,
                    bytes: 2.0 * unit,
                },
            ],
        );
        let short = times.first().copied().unwrap_or(0.0);
        let long = times.get(1).copied().unwrap_or(0.0);
        assert!((short - 2.0).abs() < 1e-5, "got {times:?}");
        assert!((long - 3.0).abs() < 1e-5, "got {times:?}");
    }

    #[test]
    fn oversubscribed_uplink_throttles_cross_rack_traffic() {
        // 4 nodes, 2 racks. Node 0 and node 2 are rack 0; nodes 1, 3 are
        // rack 1. All four cross-rack flows share the two rack links.
        let bytes = 117.0e6;
        let flows = [
            Flow {
                src: 0,
                dst: 1,
                bytes,
            },
            Flow {
                src: 2,
                dst: 3,
                bytes,
            },
        ];
        let fast = flow_finish_times(&Topology::racked(2, 1.0), 4, &flows);
        // Oversubscription 16 → uplink = 10*GigE/16 < GigE: the rack
        // uplink, shared by both flows, becomes the bottleneck.
        let slow = flow_finish_times(&Topology::racked(2, 16.0), 4, &flows);
        for (f, s) in fast.iter().zip(&slow) {
            assert!(s > f, "oversubscription must slow cross-rack flows");
        }
        // With full bisection the 10 GigE core is no bottleneck: each
        // flow runs at node line rate.
        for f in &fast {
            assert!((f - 1.0).abs() < 1e-5, "got {fast:?}");
        }
    }

    #[test]
    fn intra_rack_traffic_ignores_the_uplink() {
        // Nodes 0 and 2 share rack 0 of 2: their flow never crosses the
        // core, so even absurd oversubscription leaves it at line rate.
        let bytes = 117.0e6;
        let flows = [Flow {
            src: 0,
            dst: 2,
            bytes,
        }];
        let a = flow_finish_times(&Topology::racked(2, 1.0), 4, &flows);
        let b = flow_finish_times(&Topology::racked(2, 64.0), 4, &flows);
        assert_eq!(a, b);
        assert!((a.first().copied().unwrap_or(0.0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn fetch_seconds_monotone_in_oversubscription() {
        let mut prev = 0.0;
        for over in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let t = Topology::racked(3, over);
            let fetch = reduce_fetch_seconds(&t, 6, 12, 512.0 * 1e6);
            let worst = fetch.iter().copied().fold(0.0, f64::max);
            assert!(
                worst >= prev - 1e-9,
                "oversubscription {over}: {worst} < {prev}"
            );
            prev = worst;
        }
    }

    #[test]
    fn deterministic() {
        let t = Topology::racked(3, 4.0);
        let a = reduce_fetch_seconds(&t, 9, 18, 1e9);
        let b = reduce_fetch_seconds(&t, 9, 18, 1e9);
        assert_eq!(a, b);
    }

    #[test]
    fn crashed_source_flow_is_cancelled_and_bandwidth_released() {
        // Regression: a flow sourced from a crashed node used to keep
        // filling bandwidth to completion. Flows 0→1 and 2→1 share node
        // 1's downlink at half rate each; node 0 dies at t=1, so its
        // flow must be cancelled there and the survivor must finish on
        // the released full rate: 1.5 units left at t=1 → done at 2.5,
        // not the contended 4.0.
        let t = one_rack();
        let unit = 117.0e6;
        let flows = [
            Flow {
                src: 0,
                dst: 1,
                bytes: 2.0 * unit,
            },
            Flow {
                src: 2,
                dst: 1,
                bytes: 2.0 * unit,
            },
        ];
        let out = flow_finish_times_with_crashes(&t, 3, &flows, &[(0, 1.0)]);
        assert_eq!(out.cancelled, vec![true, false]);
        let dead = out.finish_s.first().copied().unwrap_or(0.0);
        let live = out.finish_s.get(1).copied().unwrap_or(0.0);
        assert!((dead - 1.0).abs() < 1e-5, "cancelled at crash: {out:?}");
        assert!((live - 2.5).abs() < 1e-5, "released bandwidth: {out:?}");
        // The buggy (crash-blind) trajectory keeps both at half rate.
        let blind = flow_finish_times(&t, 3, &flows);
        for b in &blind {
            assert!((b - 4.0).abs() < 1e-5, "got {blind:?}");
        }
    }

    #[test]
    fn no_crashes_reproduces_flow_finish_times_exactly() {
        let t = Topology::racked(2, 8.0);
        let flows = [
            Flow {
                src: 0,
                dst: 1,
                bytes: 3.0e8,
            },
            Flow {
                src: 1,
                dst: 2,
                bytes: 1.0e8,
            },
            Flow {
                src: 3,
                dst: 0,
                bytes: 2.0e8,
            },
        ];
        let plain = flow_finish_times(&t, 4, &flows);
        let out = flow_finish_times_with_crashes(&t, 4, &flows, &[]);
        assert_eq!(out.finish_s, plain);
        assert_eq!(out.cancelled, vec![false; 3]);
    }

    #[test]
    fn crash_after_completion_cancels_nothing() {
        let t = one_rack();
        let flows = [Flow {
            src: 0,
            dst: 1,
            bytes: 117.0e6, // one second at line rate
        }];
        let out = flow_finish_times_with_crashes(&t, 2, &flows, &[(0, 5.0)]);
        assert_eq!(out.cancelled, vec![false]);
        assert!((out.finish_s.first().copied().unwrap_or(0.0) - 1.0).abs() < 1e-5);
    }
}
