//! Paper-vs-measured calibration: every headline claim of the paper as a
//! programmatically checked target.
//!
//! Absolute numbers cannot match a 2017 hardware testbed, so each target
//! records the paper's value, our measured value, and whether the *claim*
//! (direction/winner/ordering) holds in the simulation. `report()` renders
//! the table that backs `EXPERIMENTS.md`.

use hhsim_arch::presets;
use hhsim_workloads::AppId;

use crate::figures;
use crate::model::{simulate, SimConfig};

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Target {
    /// Which artifact the claim belongs to ("fig1", "table3", ...).
    pub artifact: &'static str,
    /// Human-readable claim.
    pub claim: String,
    /// The paper's published value (NaN when the paper gives no number).
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Whether the qualitative claim holds.
    pub holds: bool,
}

impl Target {
    fn new(
        artifact: &'static str,
        claim: impl Into<String>,
        paper: f64,
        measured: f64,
        holds: bool,
    ) -> Self {
        Target {
            artifact,
            claim: claim.into(),
            paper,
            measured,
            holds,
        }
    }
}

/// Execution-time ratio Atom/Xeon at paper defaults for `app`.
fn exec_ratio(app: AppId) -> f64 {
    let x = simulate(&SimConfig::new(app, presets::xeon_e5_2420()));
    let a = simulate(&SimConfig::new(app, presets::atom_c2758()));
    a.breakdown.total() / x.breakdown.total()
}

/// Whole-app EDP ratio Xeon/Atom at paper defaults (>1 = Atom wins).
fn edp_ratio(app: AppId) -> f64 {
    let x = simulate(&SimConfig::new(app, presets::xeon_e5_2420()));
    let a = simulate(&SimConfig::new(app, presets::atom_c2758()));
    x.cost.edp() / a.cost.edp()
}

/// Runs every calibration check. Expensive (seconds): sweeps several
/// figures.
pub fn check_all() -> Vec<Target> {
    let mut t = Vec::new();

    // ---------------- Fig. 1: IPC characterization -------------------
    let f1 = figures::fig1();
    let xs = f1.value("Xeon", "Avg_Spec").expect("fig1 xeon spec");
    let xh = f1.value("Xeon", "Avg_Hadoop").expect("fig1 xeon hadoop");
    let as_ = f1.value("Atom", "Avg_Spec").expect("fig1 atom spec");
    let ah = f1.value("Atom", "Avg_Hadoop").expect("fig1 atom hadoop");
    t.push(Target::new(
        "fig1",
        "Hadoop IPC drop vs SPEC on big core (x lower)",
        2.16,
        xs / xh,
        xs / xh > 1.5,
    ));
    t.push(Target::new(
        "fig1",
        "Hadoop IPC drop vs SPEC on little core",
        1.55,
        as_ / ah,
        as_ / ah > 1.2,
    ));
    t.push(Target::new(
        "fig1",
        "Xeon/Atom IPC ratio on Hadoop",
        1.43,
        xh / ah,
        (1.2..1.8).contains(&(xh / ah)),
    ));
    t.push(Target::new(
        "fig1",
        "IPC drop larger on big than little core",
        2.16 / 1.55,
        (xs / xh) / (as_ / ah),
        xs / xh > as_ / ah,
    ));

    // ---------------- Fig. 2: suite-level ED^xP ----------------------
    let f2 = figures::fig2();
    let spec1 = f2.value("ED1P", "Avg_Spec").expect("fig2");
    let spec3 = f2.value("ED3P", "Avg_Spec").expect("fig2");
    let had1 = f2.value("ED1P", "Avg_Hadoop").expect("fig2");
    let had3 = f2.value("ED3P", "Avg_Hadoop").expect("fig2");
    t.push(Target::new(
        "fig2",
        "EDP favours Atom for all suites (ratio > 1)",
        f64::NAN,
        had1.min(spec1),
        spec1 > 1.0 && had1 > 1.0,
    ));
    t.push(Target::new(
        "fig2",
        "performance constraints (ED3P) favour the big core more than EDP does",
        f64::NAN,
        spec3 / spec1,
        spec3 < spec1 && had3 < had1,
    ));

    // ---------------- Fig. 3: execution-time ratios ------------------
    for (app, paper) in [
        (AppId::WordCount, 1.74),
        (AppId::Sort, 15.4),
        (AppId::Grep, 1.39),
        (AppId::TeraSort, 1.57),
    ] {
        let r = exec_ratio(app);
        t.push(Target::new(
            "fig3",
            format!(
                "{} exec-time ratio Atom/Xeon (Xeon faster)",
                app.short_name()
            ),
            paper,
            r,
            r > 1.0,
        ));
    }

    // ---------------- Figs. 5/6: whole-app EDP winners ---------------
    for (app, paper) in [
        (AppId::WordCount, 2.27),
        (AppId::Grep, 2.48),
        (AppId::TeraSort, f64::NAN),
        (AppId::NaiveBayes, f64::NAN),
        (AppId::FpGrowth, f64::NAN),
    ] {
        let r = edp_ratio(app);
        t.push(Target::new(
            "fig5/6",
            format!("{} EDP winner is Atom (Xeon/Atom > 1)", app.short_name()),
            paper,
            r,
            r > 1.0,
        ));
    }
    let st = edp_ratio(AppId::Sort);
    t.push(Target::new(
        "fig5/6",
        "ST EDP winner is Xeon (Xeon/Atom < 1)",
        f64::NAN,
        st,
        st < 1.0,
    ));

    // EDP falls as frequency rises (entire app), both machines.
    let f6 = figures::fig6();
    let mut edp_freq_ok = true;
    for who in ["Xeon", "Atom"] {
        for app in AppId::MICRO {
            let lo = f6
                .value(&format!("{}/{}", who, app.short_name()), "1.2GHz")
                .expect("fig6 row");
            let hi = f6
                .value(&format!("{}/{}", who, app.short_name()), "1.8GHz")
                .expect("fig6 row");
            if hi >= lo {
                edp_freq_ok = false;
            }
        }
    }
    t.push(Target::new(
        "fig6",
        "raising frequency lowers whole-app EDP everywhere",
        f64::NAN,
        f64::NAN,
        edp_freq_ok,
    ));

    // ---------------- Figs. 7/8: phase preferences -------------------
    let mut map_prefers_atom = 0;
    for app in AppId::ALL {
        let x = simulate(&SimConfig::new(app, presets::xeon_e5_2420()));
        let a = simulate(&SimConfig::new(app, presets::atom_c2758()));
        if a.map_cost.edp() < x.map_cost.edp() {
            map_prefers_atom += 1;
        }
    }
    t.push(Target::new(
        "fig7/8",
        "map phase prefers Atom for most applications",
        5.0,
        map_prefers_atom as f64,
        map_prefers_atom >= 4,
    ));

    // ---------------- Fig. 9: block-size sensitivity -----------------
    let sens = |app: AppId, m: &hhsim_arch::MachineModel| -> f64 {
        let times: Vec<f64> = hhsim_hdfs::BlockSize::SWEEP
            .iter()
            .map(|b| {
                simulate(&SimConfig::new(app, m.clone()).block_size(*b))
                    .breakdown
                    .total()
            })
            .collect();
        let max = times.iter().cloned().fold(f64::MIN, f64::max);
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        (max - min) / max
    };
    let sx = sens(AppId::Sort, &presets::xeon_e5_2420());
    let sa = sens(AppId::Sort, &presets::atom_c2758());
    t.push(Target::new(
        "fig3/9",
        "Atom more sensitive to block size than Xeon (ST variation)",
        26.18 / 18.9,
        sa / sx,
        sa > sx,
    ));

    // ---------------- Figs. 10–13: data-size scaling ------------------
    for (app, px, pa) in [
        (AppId::Grep, 3.45, 10.15),
        (AppId::NaiveBayes, 7.22, 8.59),
        (AppId::FpGrowth, 5.96, 7.97),
    ] {
        let g = |m: &hhsim_arch::MachineModel| {
            let one = simulate(&SimConfig::new(app, m.clone()).data_per_node(1 << 30));
            let twenty = simulate(&SimConfig::new(app, m.clone()).data_per_node(20 << 30));
            twenty.breakdown.total() / one.breakdown.total()
        };
        let gx = g(&presets::xeon_e5_2420());
        let ga = g(&presets::atom_c2758());
        t.push(Target::new(
            "fig10/11",
            format!("{} 1→20GB growth larger on Atom", app.short_name()),
            pa / px,
            ga / gx,
            ga > gx,
        ));
    }
    let f12 = figures::fig12();
    let mut edp_grows = true;
    for who in ["Xeon", "Atom"] {
        for app in AppId::ALL {
            let one = f12
                .value(&format!("{}/{}", who, app.short_name()), "1GB")
                .expect("fig12");
            let twenty = f12
                .value(&format!("{}/{}", who, app.short_name()), "20GB")
                .expect("fig12");
            if twenty <= one {
                edp_grows = false;
            }
        }
    }
    t.push(Target::new(
        "fig12",
        "EDP rises with input size on both machines",
        f64::NAN,
        f64::NAN,
        edp_grows,
    ));

    // ---------------- Figs. 14–16: acceleration ----------------------
    let f14 = figures::fig14();
    let all_below_one = f14.rows.iter().all(|r| r.value <= 1.02);
    t.push(Target::new(
        "fig14",
        "post-acceleration speedup ratio ≤ 1 for every app",
        f64::NAN,
        f64::NAN,
        all_below_one,
    ));
    let ts100 = f14.value("TeraSort", "100x").expect("fig14");
    let gp100 = f14.value("Grep", "100x").expect("fig14");
    let wc100 = f14.value("WordCount", "100x").expect("fig14");
    t.push(Target::new(
        "fig14",
        "acceleration impact negligible for TS and GP, strong for WC",
        f64::NAN,
        ts100.min(gp100) - wc100,
        ts100 > wc100 && gp100 > wc100,
    ));

    // ---------------- Table 3 / Fig. 17: scheduling ------------------
    let t3 = figures::table3();
    let v = |series: &str, x: &str| t3.value(series, x).expect("table3 row");
    t.push(Target::new(
        "table3",
        "more Atom cores reduce EDP (ST: M2 → M8)",
        1.05e6 / 3.40e5,
        v("EDP/ST", "Atom/M2") / v("EDP/ST", "Atom/M8"),
        v("EDP/ST", "Atom/M8") < v("EDP/ST", "Atom/M2"),
    ));
    t.push(Target::new(
        "table3",
        "ST EDP lower on Xeon than Atom at M8",
        1.31e4 / 3.40e5,
        v("EDP/ST", "Xeon/M8") / v("EDP/ST", "Atom/M8"),
        v("EDP/ST", "Xeon/M8") < v("EDP/ST", "Atom/M8"),
    ));
    t.push(Target::new(
        "table3",
        "micro-benchmarks: EDAP grows with core count (WC on Atom)",
        3.91e8 / 1.34e8,
        v("EDAP/WC", "Atom/M8") / v("EDAP/WC", "Atom/M2"),
        v("EDAP/WC", "Atom/M8") > v("EDAP/WC", "Atom/M2"),
    ));
    t.push(Target::new(
        "table3",
        "real-world apps: EDAP shrinks with core count (FP on Atom)",
        2.27e12 / 3.05e12,
        v("EDAP/FP", "Atom/M8") / v("EDAP/FP", "Atom/M2"),
        v("EDAP/FP", "Atom/M8") < v("EDAP/FP", "Atom/M2"),
    ));
    t.push(Target::new(
        "table3",
        "8 Atom cores beat 2 Xeon cores on EDP (WC)",
        4.20e5 / 1.52e6,
        v("EDP/WC", "Atom/M8") / v("EDP/WC", "Xeon/M2"),
        v("EDP/WC", "Atom/M8") < v("EDP/WC", "Xeon/M2"),
    ));
    t.push(Target::new(
        "fig17",
        "ED2AP: 2 Xeon cores beat 8 Atom cores for TeraSort",
        f64::NAN,
        v("ED2AP/TS", "Xeon/M2") / v("ED2AP/TS", "Atom/M8"),
        v("ED2AP/TS", "Xeon/M2") < v("ED2AP/TS", "Atom/M8"),
    ));
    t
}

/// Renders the calibration table as aligned text.
pub fn report(targets: &[Target]) -> String {
    let mut out = String::from(
        "artifact   ok  paper      measured   claim\n------------------------------------------------------------------\n",
    );
    for t in targets {
        out.push_str(&format!(
            "{:<9} {:>3}  {:>9}  {:>9}  {}\n",
            t.artifact,
            if t.holds { "yes" } else { "NO" },
            fmt_num(t.paper),
            fmt_num(t.measured),
            t.claim
        ));
    }
    let held = targets.iter().filter(|t| t.holds).count();
    out.push_str(&format!("\n{held}/{} claims hold\n", targets.len()));
    out
}

fn fmt_num(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v.abs() >= 1000.0 || (v != 0.0 && v.abs() < 0.01) {
        format!("{v:.2e}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_num_handles_ranges() {
        assert_eq!(fmt_num(f64::NAN), "-");
        assert_eq!(fmt_num(1.5), "1.50");
        assert_eq!(fmt_num(1.0e6), "1.00e6");
    }

    // The full calibration sweep runs in `tests/calibration.rs` (it is
    // expensive); here we only check the report renderer.
    #[test]
    fn report_renders() {
        let ts = vec![Target::new("figX", "demo", 1.0, 2.0, true)];
        let r = report(&ts);
        assert!(r.contains("figX"));
        assert!(r.contains("1/1 claims hold"));
    }
}
