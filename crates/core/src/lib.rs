//! `hhsim-core` — the experiment harness reproducing Malik et al.,
//! *Big vs little core for energy-efficient Hadoop computing* (DATE'17 /
//! JPDC'18), end to end in simulation.
//!
//! The crate composes the substrates into the paper's measurement loop:
//!
//! 1. each application executes **functionally** on the MapReduce engine
//!    ([`hhsim_workloads`]) to extract scale-invariant dataflow ratios
//!    ([`ratios::AppRatios`]);
//! 2. the **node timing model** ([`model`]) prices map/reduce/others
//!    phases on a concrete machine (core + cache simulation via
//!    [`hhsim_arch`], disk via [`hhsim_hdfs`]), at a DVFS point and HDFS
//!    block size;
//! 3. the **cluster simulator** ([`cluster`]) schedules the task graph on
//!    map/reduce slots with the discrete-event kernel to get wall-clock
//!    phase times;
//! 4. the **simulated power meter** ([`hhsim_energy`]) samples the power
//!    trace, subtracts idle, and yields energy and ED^xP / ED^xAP costs;
//! 5. [`figures`] regenerates every table and figure of the paper, and
//!    [`calibration`] records the published numbers next to ours.
//!
//! # Examples
//!
//! ```
//! use hhsim_core::{simulate, SimConfig};
//! use hhsim_core::arch::{presets, Frequency};
//! use hhsim_core::hdfs::BlockSize;
//! use hhsim_core::workloads::AppId;
//!
//! let xeon = simulate(&SimConfig::new(AppId::WordCount, presets::xeon_e5_2420())
//!     .frequency(Frequency::GHZ_1_8)
//!     .block_size(BlockSize::MB_256));
//! let atom = simulate(&SimConfig::new(AppId::WordCount, presets::atom_c2758())
//!     .frequency(Frequency::GHZ_1_8)
//!     .block_size(BlockSize::MB_256));
//! assert!(xeon.breakdown.total() < atom.breakdown.total(), "big core is faster");
//! assert!(xeon.cost.edp() > atom.cost.edp(), "little core wins WordCount EDP");
//! ```

pub mod calibration;
pub mod cluster;
pub mod figures;
pub mod harness;
pub mod model;
pub mod ratios;
pub mod report;
pub mod shuffle;
pub mod simcache;

pub use cluster::{
    attempt_jitter, homogeneous_makespan, placement_probes, reset_placement_probes, run_phase,
    run_phase_faulty, run_phase_faulty_fetch, Cluster, ClusterTimeline, FetchPlan, FifoAnySlot,
    FreeSlots, KindPreferring, Node, NodeTiming, PhaseLoad, PhaseRun, Placement, SlotStats,
    TaskSet, TaskSpan,
};
pub use harness::{
    run_grid, run_grid_with, set_jobs, Aggregate, HarnessSnapshot, ReplicationPlan,
    ReplicationSummary, Sweep,
};
pub use model::{
    job_class, simulate, simulate_cluster, simulate_cluster_with, simulate_with,
    try_simulate_cluster, try_simulate_cluster_with, Measurement, NodeMix, PhaseCost,
    PlacementKind, SimConfig,
};
pub use ratios::AppRatios;
pub use report::{FigureData, Row};
pub use shuffle::{flow_finish_times, reduce_fetch_seconds, Flow};
pub use simcache::{CacheStats, SimCache};

// Substrate re-exports: `hhsim_core` is the facade downstream users take.
pub use hhsim_accel as accel;
pub use hhsim_arch as arch;
pub use hhsim_des as des;
pub use hhsim_energy as energy;
pub use hhsim_faults as faults;
pub use hhsim_hdfs as hdfs;
pub use hhsim_mapreduce as mapreduce;
pub use hhsim_sched as sched;
pub use hhsim_workloads as workloads;
