//! Generators for every table and figure in the paper's evaluation.
//!
//! Each function reproduces one artifact as a [`FigureData`] table
//! (`series`, `x`, `value` rows, CSV-ready). Absolute values are in model
//! units; the *shapes* — who wins, by what factor, where crossovers fall —
//! are the reproduction targets, checked against
//! [`crate::calibration`].
//!
//! Every simulation-backed generator flattens its nested loops into a
//! [`Sweep`] grid: points are registered first (capturing their indices
//! in row specs), the whole grid runs on the parallel memoized harness
//! ([`crate::harness`]), and rows are assembled from the returned
//! measurements in registration order. Output is therefore identical for
//! any `--jobs` worker count.

use hhsim_accel::AccelConfig;
use hhsim_arch::{presets, ComputeProfile, Frequency, MachineModel};
use hhsim_energy::MetricKind;
use hhsim_hdfs::{BlockSize, Topology};
use hhsim_workloads::AppId;

use hhsim_faults::{DomainConfig, FaultConfig, PhaseError, RecoveryPolicy};

use crate::harness::{ReplicationPlan, Sweep};
use crate::model::{try_simulate_cluster, Measurement, NodeMix, PlacementKind, SimConfig};
use crate::report::FigureData;

/// Per-node data size used for micro-benchmarks (1 GB, §3).
pub const MICRO_DATA: u64 = 1 << 30;
/// Per-node data size used for real-world applications (10 GB, §3).
pub const REAL_DATA: u64 = 10 << 30;

fn machines() -> [MachineModel; 2] {
    presets::both()
}

fn cfg(app: AppId, m: &MachineModel) -> SimConfig {
    SimConfig::new(app, m.clone())
}

fn label(m: &MachineModel) -> &'static str {
    match m.core.kind {
        hhsim_arch::CoreKind::Big => "Xeon",
        hhsim_arch::CoreKind::Little => "Atom",
    }
}

/// The paper's data size for `app` (1 GB micro / 10 GB real world).
fn data_for(app: AppId) -> u64 {
    if app.is_real_world() {
        REAL_DATA
    } else {
        MICRO_DATA
    }
}

/// The paper's block-size sweep for `app` (§3.1.1 uses 64–512 MB on the
/// real-world applications).
fn blocks_for(app: AppId) -> &'static [BlockSize] {
    if app.is_real_world() {
        &BlockSize::SWEEP_REAL
    } else {
        &BlockSize::SWEEP
    }
}

/// Table 1: architectural parameters of both machines.
pub fn table1() -> FigureData {
    let mut f = FigureData::new("table1", "Architectural parameters", "value");
    for m in machines() {
        let who = label(&m);
        f.push(who, "issue_width", m.core.issue_width);
        f.push(who, "cores", m.num_cores as f64);
        f.push(who, "cache_levels", m.cache_levels.len() as f64);
        for c in &m.cache_levels {
            f.push(who, format!("{}_kb", c.name), (c.size_bytes / 1024) as f64);
        }
        f.push(who, "memory_gb", m.memory_gb);
        f.push(who, "area_mm2", m.area_mm2);
    }
    f
}

/// Table 2: the studied applications (1 row per app, value = class code
/// 0 = compute, 1 = I/O, 2 = hybrid).
pub fn table2() -> FigureData {
    let mut f = FigureData::new("table2", "Studied Hadoop applications", "class");
    for app in AppId::ALL {
        let class = match app.class() {
            hhsim_workloads::AppClass::Compute => 0.0,
            hhsim_workloads::AppClass::Io => 1.0,
            hhsim_workloads::AppClass::Hybrid => 2.0,
        };
        f.push(app.full_name(), app.domain(), class);
    }
    f
}

/// Fig. 1: IPC of SPEC, PARSEC and Hadoop suite averages on both cores.
pub fn fig1() -> FigureData {
    let mut f = FigureData::new("fig1", "IPC of SPEC/PARSEC/Hadoop on big and little", "ipc");
    let suites = [
        ("Avg_Spec", ComputeProfile::spec_average()),
        ("Avg_Parsec", ComputeProfile::parsec_average()),
        ("Avg_Hadoop", ComputeProfile::hadoop_average()),
    ];
    for m in machines() {
        for (name, p) in &suites {
            f.push(label(&m), *name, m.effective_ipc(p, Frequency::GHZ_1_8));
        }
    }
    f
}

/// Fig. 2: EDP, ED²P, ED³P ratio (Xeon / Atom) per suite — >1 means the
/// little core is the more efficient choice.
pub fn fig2() -> FigureData {
    let mut f = FigureData::new(
        "fig2",
        "ED^xP ratio Xeon/Atom for SPEC, PARSEC, Hadoop",
        "ratio",
    );
    let [xeon, atom] = machines();
    let suites = [
        ("Avg_Spec", ComputeProfile::spec_average()),
        ("Avg_Parsec", ComputeProfile::parsec_average()),
        ("Avg_Hadoop", ComputeProfile::hadoop_average()),
    ];
    let freq = Frequency::GHZ_1_8;
    // Fixed-work suite model: N instructions on one core of each machine.
    let n_instr = 2.0e11;
    for (name, p) in &suites {
        let t_x = xeon.compute_seconds(n_instr, p, freq);
        let t_a = atom.compute_seconds(n_instr, p, freq);
        let p_x = xeon
            .power
            .node_power(xeon.operating_point(freq), 1, 1, p.activity, 0.4, 0.0)
            .dynamic();
        let p_a = atom
            .power
            .node_power(atom.operating_point(freq), 1, 1, p.activity, 0.4, 0.0)
            .dynamic();
        for x in 1..=3u32 {
            let edxp_x = p_x * t_x * t_x.powi(x as i32 - 1);
            let edxp_a = p_a * t_a * t_a.powi(x as i32 - 1);
            f.push(format!("ED{x}P"), *name, edxp_x / edxp_a);
        }
    }
    f
}

/// Shared sweep: execution time over block sizes × frequencies.
fn exec_sweep(
    id: &str,
    title: &str,
    apps: &[AppId],
    blocks: &[BlockSize],
    data: u64,
) -> FigureData {
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for m in machines() {
        for app in apps {
            for freq in Frequency::SWEEP {
                for b in blocks {
                    let p = sweep.point(
                        cfg(*app, &m)
                            .frequency(freq)
                            .block_size(*b)
                            .data_per_node(data),
                    );
                    rows.push((
                        format!("{}/{}", label(&m), app.short_name()),
                        format!("{}MB@{:.1}GHz", b.mib(), freq.ghz()),
                        p,
                    ));
                }
            }
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new(id, title, "seconds");
    for (series, x, p) in rows {
        f.push(series, x, meas[p].breakdown.total());
    }
    f
}

/// Fig. 3: execution time of the micro-benchmarks across HDFS block sizes
/// and frequencies (1 GB/node).
pub fn fig3() -> FigureData {
    exec_sweep(
        "fig3",
        "Execution time, micro-benchmarks vs block size x frequency",
        &AppId::MICRO,
        &BlockSize::SWEEP,
        MICRO_DATA,
    )
}

/// Fig. 4: execution time of the real-world applications (10 GB/node,
/// 64–512 MB blocks per §3.1.1).
pub fn fig4() -> FigureData {
    exec_sweep(
        "fig4",
        "Execution time, real-world applications vs block size x frequency",
        &AppId::REAL,
        &BlockSize::SWEEP_REAL,
        REAL_DATA,
    )
}

/// Shared sweep: whole-application EDP vs frequency, normalized to Atom @
/// 1.2 GHz (the paper's Figs. 5/6 normalization).
fn edp_sweep(id: &str, title: &str, apps: &[AppId], data: u64) -> FigureData {
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for app in apps {
        let base = sweep.point(
            cfg(*app, &presets::atom_c2758())
                .frequency(Frequency::GHZ_1_2)
                .data_per_node(data),
        );
        for m in machines() {
            for freq in Frequency::SWEEP {
                let p = sweep.point(cfg(*app, &m).frequency(freq).data_per_node(data));
                rows.push((
                    format!("{}/{}", label(&m), app.short_name()),
                    format!("{:.1}GHz", freq.ghz()),
                    p,
                    base,
                ));
            }
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new(id, title, "edp_norm");
    for (series, x, p, base) in rows {
        f.push(series, x, meas[p].cost.edp() / meas[base].cost.edp());
    }
    f
}

/// Fig. 5: EDP of the entire real-world applications vs frequency.
pub fn fig5() -> FigureData {
    edp_sweep(
        "fig5",
        "EDP of entire real-world apps vs frequency",
        &AppId::REAL,
        REAL_DATA,
    )
}

/// Fig. 6: EDP of the entire micro-benchmarks vs frequency.
pub fn fig6() -> FigureData {
    edp_sweep(
        "fig6",
        "EDP of entire micro-benchmarks vs frequency",
        &AppId::MICRO,
        MICRO_DATA,
    )
}

/// Shared sweep: per-phase EDP vs frequency (Figs. 7/8), normalized to the
/// Atom 1.2 GHz map phase.
fn phase_edp_sweep(id: &str, title: &str, apps: &[AppId], data: u64) -> FigureData {
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for app in apps {
        let base = sweep.point(
            cfg(*app, &presets::atom_c2758())
                .frequency(Frequency::GHZ_1_2)
                .data_per_node(data),
        );
        for m in machines() {
            for freq in Frequency::SWEEP {
                let p = sweep.point(cfg(*app, &m).frequency(freq).data_per_node(data));
                rows.push((*app, label(&m), freq, p, base));
            }
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new(id, title, "edp_norm");
    for (app, who, freq, p, base) in rows {
        let norm = meas[base].map_cost.edp().max(1e-12);
        let x = format!("{:.1}GHz", freq.ghz());
        f.push(
            format!("{}/{} map", who, app.short_name()),
            x.clone(),
            meas[p].map_cost.edp() / norm,
        );
        if app.has_reduce() {
            f.push(
                format!("{}/{} reduce", who, app.short_name()),
                x,
                meas[p].reduce_cost.edp() / norm,
            );
        }
    }
    f
}

/// Fig. 7: map/reduce-phase EDP of the micro-benchmarks vs frequency.
pub fn fig7() -> FigureData {
    phase_edp_sweep(
        "fig7",
        "Phase EDP, micro-benchmarks",
        &AppId::MICRO,
        MICRO_DATA,
    )
}

/// Fig. 8: map/reduce-phase EDP of the real-world applications.
pub fn fig8() -> FigureData {
    phase_edp_sweep(
        "fig8",
        "Phase EDP, real-world applications",
        &AppId::REAL,
        REAL_DATA,
    )
}

/// Fig. 9: EDP ratio (Xeon/Atom) vs HDFS block size at 1.8 GHz.
pub fn fig9() -> FigureData {
    let [xeon, atom] = machines();
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for app in AppId::ALL {
        let data = data_for(app);
        for b in blocks_for(app) {
            let px = sweep.point(cfg(app, &xeon).block_size(*b).data_per_node(data));
            let pa = sweep.point(cfg(app, &atom).block_size(*b).data_per_node(data));
            rows.push((app, *b, px, pa));
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new("fig9", "EDP ratio Xeon/Atom vs block size @1.8GHz", "ratio");
    for (app, b, px, pa) in rows {
        f.push(
            app.full_name(),
            format!("{}MB", b.mib()),
            meas[px].cost.edp() / meas[pa].cost.edp(),
        );
    }
    f
}

/// Data-size labels of §3.3.
const DATA_SIZES: [(u64, &str); 3] = [(1 << 30, "1GB"), (10 << 30, "10GB"), (20 << 30, "20GB")];

/// Shared sweep: execution-time breakdown and total vs input size.
fn datasize_breakdown(id: &str, title: &str, apps: &[AppId]) -> FigureData {
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for m in machines() {
        for app in apps {
            for (bytes, lbl) in DATA_SIZES {
                let p = sweep.point(cfg(*app, &m).data_per_node(bytes));
                rows.push((format!("{}/{}", label(&m), app.short_name()), lbl, p));
            }
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new(id, title, "seconds");
    for (s, lbl, p) in rows {
        let b = &meas[p].breakdown;
        f.push(format!("{s} map"), lbl, b.map_s);
        f.push(format!("{s} reduce"), lbl, b.reduce_s);
        f.push(format!("{s} others"), lbl, b.others_s);
        f.push(format!("{s} total"), lbl, b.total());
    }
    f
}

/// Fig. 10: execution breakdown vs input size, micro-benchmarks (WC, TS).
pub fn fig10() -> FigureData {
    datasize_breakdown(
        "fig10",
        "Execution time breakdown vs data size (micro)",
        &[AppId::WordCount, AppId::TeraSort],
    )
}

/// Fig. 11: execution breakdown vs input size, real-world apps (NB, FP).
pub fn fig11() -> FigureData {
    datasize_breakdown(
        "fig11",
        "Execution time breakdown vs data size (real world)",
        &AppId::REAL,
    )
}

/// Fig. 12: whole-application EDP vs input size (normalized per app to
/// Atom @ 1 GB).
pub fn fig12() -> FigureData {
    let [xeon, atom] = machines();
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for app in AppId::ALL {
        let base = sweep.point(cfg(app, &atom).data_per_node(1 << 30));
        for (m, who) in [(&atom, "Atom"), (&xeon, "Xeon")] {
            for (bytes, lbl) in DATA_SIZES {
                let p = sweep.point(cfg(app, m).data_per_node(bytes));
                rows.push((format!("{}/{}", who, app.short_name()), lbl, p, base));
            }
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new(
        "fig12",
        "EDP of entire application vs data size",
        "edp_norm",
    );
    for (series, lbl, p, base) in rows {
        f.push(series, lbl, meas[p].cost.edp() / meas[base].cost.edp());
    }
    f
}

/// Fig. 13: map/reduce-phase EDP vs input size (normalized per app to the
/// Atom 1 GB map phase).
pub fn fig13() -> FigureData {
    let [xeon, atom] = machines();
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for app in AppId::ALL {
        let base = sweep.point(cfg(app, &atom).data_per_node(1 << 30));
        for (m, who) in [(&atom, "Atom"), (&xeon, "Xeon")] {
            for (bytes, lbl) in DATA_SIZES {
                let p = sweep.point(cfg(app, m).data_per_node(bytes));
                rows.push((app, who, lbl, p, base));
            }
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new("fig13", "Phase EDP vs data size", "edp_norm");
    for (app, who, lbl, p, base) in rows {
        let norm = meas[base].map_cost.edp().max(1e-12);
        f.push(
            format!("{}/{} map", who, app.short_name()),
            lbl,
            meas[p].map_cost.edp() / norm,
        );
        if app.has_reduce() {
            f.push(
                format!("{}/{} reduce", who, app.short_name()),
                lbl,
                meas[p].reduce_cost.edp() / norm,
            );
        }
    }
    f
}

/// Point indices of one Eq. (1) ratio: the Atom→Xeon speedup ratio after
/// vs before acceleration. `before_*` points may be shared between rows
/// that sweep only the accelerator.
struct AccelSpec {
    before_xeon: usize,
    before_atom: usize,
    after_xeon: usize,
    after_atom: usize,
}

impl AccelSpec {
    /// Eq. (1) from the measurements of this spec's four points.
    fn ratio(&self, meas: &[Measurement]) -> f64 {
        let t = |p: usize| meas[p].breakdown.total();
        let before = t(self.before_atom) / t(self.before_xeon);
        let after = t(self.after_atom) / t(self.after_xeon);
        after / before
    }
}

/// Registers the (xeon, atom) pair for one accelerated-or-not point.
fn accel_pair(
    sweep: &mut Sweep,
    app: AppId,
    freq: Frequency,
    block: BlockSize,
    accel: Option<AccelConfig>,
) -> (usize, usize) {
    let [xeon, atom] = machines();
    let mk = |m: &MachineModel| {
        let mut c = cfg(app, m)
            .frequency(freq)
            .block_size(block)
            .data_per_node(data_for(app));
        if let Some(a) = accel {
            c = c.accelerator(a);
        }
        c
    };
    (sweep.point(mk(&xeon)), sweep.point(mk(&atom)))
}

/// Fig. 14: speedup ratio (Eq. 1) vs mapper acceleration rate 1–100×.
pub fn fig14() -> FigureData {
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for app in AppId::ALL {
        // The unaccelerated baseline is independent of the rate: register
        // it once per app and share it across the sweep's rows.
        let (bx, ba) = accel_pair(&mut sweep, app, Frequency::GHZ_1_8, BlockSize::MB_512, None);
        for acc in AccelConfig::sweep() {
            let (ax, aa) = accel_pair(
                &mut sweep,
                app,
                Frequency::GHZ_1_8,
                BlockSize::MB_512,
                Some(acc),
            );
            rows.push((
                app,
                format!("{:.0}x", acc.rate),
                AccelSpec {
                    before_xeon: bx,
                    before_atom: ba,
                    after_xeon: ax,
                    after_atom: aa,
                },
            ));
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new(
        "fig14",
        "Atom vs Xeon speedup after/before acceleration vs rate",
        "ratio",
    );
    for (app, x, spec) in rows {
        f.push(app.full_name(), x, spec.ratio(&meas));
    }
    f
}

/// Fig. 15: speedup ratio (Eq. 1) at 20× acceleration vs frequency.
pub fn fig15() -> FigureData {
    let acc = AccelConfig::fpga(20.0);
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for app in AppId::ALL {
        for freq in Frequency::SWEEP {
            let (bx, ba) = accel_pair(&mut sweep, app, freq, BlockSize::MB_512, None);
            let (ax, aa) = accel_pair(&mut sweep, app, freq, BlockSize::MB_512, Some(acc));
            rows.push((
                app,
                format!("{:.1}GHz", freq.ghz()),
                AccelSpec {
                    before_xeon: bx,
                    before_atom: ba,
                    after_xeon: ax,
                    after_atom: aa,
                },
            ));
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new("fig15", "Acceleration ratio vs frequency", "ratio");
    for (app, x, spec) in rows {
        f.push(app.full_name(), x, spec.ratio(&meas));
    }
    f
}

/// Fig. 16: speedup ratio (Eq. 1) at 20× acceleration vs block size.
pub fn fig16() -> FigureData {
    let acc = AccelConfig::fpga(20.0);
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for app in AppId::ALL {
        for b in blocks_for(app) {
            let (bx, ba) = accel_pair(&mut sweep, app, Frequency::GHZ_1_8, *b, None);
            let (ax, aa) = accel_pair(&mut sweep, app, Frequency::GHZ_1_8, *b, Some(acc));
            rows.push((
                app,
                format!("{}MB", b.mib()),
                AccelSpec {
                    before_xeon: bx,
                    before_atom: ba,
                    after_xeon: ax,
                    after_atom: aa,
                },
            ));
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new("fig16", "Acceleration ratio vs block size", "ratio");
    for (app, x, spec) in rows {
        f.push(app.full_name(), x, spec.ratio(&meas));
    }
    f
}

/// Core counts studied in Table 3 / Fig. 17.
pub const CORE_SWEEP: [usize; 4] = [2, 4, 6, 8];

/// Block size for the scheduling study. The paper states 512 MB, but on
/// 1 GB/node inputs that yields only 2 map tasks per node, so core-count
/// scaling could never manifest; 128 MB gives 8 tasks/node (≥ the largest
/// M), which is the regime the paper's Table 3 numbers clearly come from
/// (256 MB keeps 4 tasks per node: parallelism scales up to M=8 while the
/// workload still resembles the large-block configuration).
pub const SCHED_BLOCK: BlockSize = BlockSize::MB_256;

/// Table 3: operational (ED^xP) and capital (ED^xAP) cost for 2–8 cores
/// on both machines, 512 MB blocks @ 1.8 GHz (§3.5).
pub fn table3() -> FigureData {
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for m in machines() {
        for app in AppId::ALL {
            for cores in CORE_SWEEP {
                let p = sweep.point(
                    cfg(app, &m)
                        .data_per_node(data_for(app))
                        .block_size(SCHED_BLOCK)
                        .mappers(cores),
                );
                rows.push((app, format!("{}/M{}", label(&m), cores), p));
            }
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new("table3", "Operational and capital cost vs cores", "value");
    for (app, x, p) in rows {
        let cost = &meas[p].cost;
        f.push(format!("EDP/{}", app.short_name()), x.clone(), cost.edp());
        f.push(format!("ED2P/{}", app.short_name()), x.clone(), cost.ed2p());
        f.push(format!("EDAP/{}", app.short_name()), x.clone(), cost.edap());
        f.push(format!("ED2AP/{}", app.short_name()), x, cost.ed2ap());
    }
    f
}

/// Fig. 17: spider-chart data — the four cost metrics normalized to the
/// 8-Xeon-core configuration of each application.
pub fn fig17() -> FigureData {
    let [xeon, atom] = machines();
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for app in AppId::ALL {
        let data = data_for(app);
        let base = sweep.point(
            cfg(app, &xeon)
                .data_per_node(data)
                .block_size(SCHED_BLOCK)
                .mappers(8),
        );
        for (m, who) in [(&atom, "A"), (&xeon, "X")] {
            for cores in CORE_SWEEP {
                let p = sweep.point(
                    cfg(app, m)
                        .data_per_node(data)
                        .block_size(SCHED_BLOCK)
                        .mappers(cores),
                );
                rows.push((app, who, cores, p, base));
            }
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new("fig17", "Costs normalized to 8 Xeon cores", "norm");
    for (app, who, cores, p, base) in rows {
        for k in MetricKind::ALL {
            f.push(
                format!("{}/{}{}", app.short_name(), cores, who),
                k.to_string(),
                meas[p].cost.get(k) / meas[base].cost.get(k),
            );
        }
    }
    f
}

/// Heterogeneous node mixes studied in Fig. 18, as (big, little) counts —
/// same 3-node budget as the homogeneous baselines.
pub const MIX_SWEEP: [(usize, usize); 2] = [(1, 2), (2, 1)];

/// Fig. 18 (model extension): whole-application EDP on heterogeneous
/// big+little clusters driven by the §3.5 class-aware placement, against
/// the homogeneous 3-node Xeon and Atom baselines (256 MB @ 1.8 GHz).
pub fn fig18() -> FigureData {
    let [xeon, atom] = machines();
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for app in AppId::ALL {
        let data = data_for(app);
        for (m, who) in [(&xeon, "Xeon3"), (&atom, "Atom3")] {
            let p = sweep.point(cfg(app, m).data_per_node(data).block_size(SCHED_BLOCK));
            rows.push((who.to_string(), app, p));
        }
        for (big, little) in MIX_SWEEP {
            let p = sweep.point(
                cfg(app, &xeon)
                    .data_per_node(data)
                    .block_size(SCHED_BLOCK)
                    .mix(NodeMix {
                        big,
                        little,
                        placement: PlacementKind::PaperClass(MetricKind::Edp),
                    }),
            );
            rows.push((format!("Mix{big}X{little}A"), app, p));
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new(
        "fig18",
        "EDP: mixed big+little clusters vs homogeneous baselines",
        "edp",
    );
    for (series, app, p) in rows {
        f.push(series, app.short_name(), meas[p].cost.edp());
    }
    f
}

/// Per-attempt failure probabilities swept in Fig. 19.
pub const FAULT_RATES: [f64; 4] = [0.0, 0.03, 0.06, 0.12];

/// Seed for every Fig. 19 fault schedule; fixed so the checked-in
/// artifacts regenerate byte-identically.
pub const FIG19_SEED: u64 = 0x00F1_95EE_D001;

/// Block size for the Fig. 19 fault study: 64 MB keeps ~16 tasks per
/// node, so per-attempt failure draws are numerous enough for the rate
/// sweep to bite and tasks are fine-grained enough to re-execute.
pub const FAULT_BLOCK: BlockSize = BlockSize::MB_64;

/// The Fig. 19 fault model at one point of the failure-rate sweep:
/// per-attempt task failures at `rate` for both phases, plus a background
/// straggler population (40% of nodes at 2.5x) that gives speculative
/// execution something to recover even at rate 0. The LATE minimum
/// runtime drops to 2 s because 64 MB tasks are short.
pub fn fig19_faults(rate: f64, speculation: bool) -> FaultConfig {
    let mut recovery = RecoveryPolicy::hadoop();
    recovery.speculation = speculation;
    recovery.spec_min_runtime_s = 2.0;
    FaultConfig::none()
        .seed(FIG19_SEED)
        .failure_rates(rate, rate)
        .stragglers(0.4, 2.5)
        .recovery(recovery)
}

/// Fig. 19 (model extension): makespan and EDP degradation vs per-attempt
/// failure rate on the Fig. 18 clusters, with and without LATE-style
/// speculation, normalized to each cluster's fault-free run. Every point —
/// including the fault-free baselines — uses the event-driven cluster
/// engine so the ratios isolate the cost of faults, not engine differences.
///
/// # Errors
///
/// Returns the first [`PhaseError`] of an unrecoverable point (a typed
/// "job failed" instead of a panic).
pub fn fig19() -> Result<FigureData, PhaseError> {
    let [xeon, atom] = machines();
    type ClusterSpec<'a> = (&'a str, &'a MachineModel, Option<(usize, usize)>);
    let clusters: [ClusterSpec; 3] = [
        ("Xeon3", &xeon, None),
        ("Atom3", &atom, None),
        ("Mix1X2A", &xeon, Some((1, 2))),
    ];
    let point = |app: AppId, m: &MachineModel, mix: Option<(usize, usize)>| {
        let mut c = cfg(app, m)
            .data_per_node(data_for(app))
            .block_size(FAULT_BLOCK);
        if let Some((big, little)) = mix {
            c = c.mix(NodeMix {
                big,
                little,
                placement: PlacementKind::PaperClass(MetricKind::Edp),
            });
        }
        c
    };
    let mut f = FigureData::new(
        "fig19",
        "Makespan and EDP degradation vs failure rate, with/without speculation",
        "ratio",
    );
    for app in [AppId::WordCount, AppId::TeraSort] {
        for (who, m, mix) in clusters {
            let clean = try_simulate_cluster(&point(app, m, mix))?.0;
            for speculation in [true, false] {
                let mode = if speculation { "spec" } else { "nospec" };
                for rate in FAULT_RATES {
                    let c = point(app, m, mix).faults(fig19_faults(rate, speculation));
                    let meas = try_simulate_cluster(&c)?.0;
                    let x = format!("{rate:.2}");
                    f.push(
                        format!("T/{who}/{}/{mode}", app.short_name()),
                        x.clone(),
                        meas.breakdown.total() / clean.breakdown.total(),
                    );
                    f.push(
                        format!("EDP/{who}/{}/{mode}", app.short_name()),
                        x,
                        meas.cost.edp() / clean.cost.edp(),
                    );
                }
            }
        }
    }
    Ok(f)
}

/// Fault-seed replications behind every Fig. 20 point.
pub const FIG20_SEEDS: u64 = 32;

/// First fault seed of the Fig. 20 sweep (seeds run consecutively from
/// here); fixed so the checked-in artifact regenerates byte-identically.
pub const FIG20_SEED: u64 = 0x00F2_05EE_D000;

/// Fig. 20 (model extension): seed-swept replication study of the
/// Fig. 19 fault sweep. Each point replicates one cluster/rate
/// configuration over [`FIG20_SEEDS`] fault seeds through the batched
/// replication engine ([`ReplicationPlan`]) and reports the mean
/// makespan and exact-energy EDP with 95% confidence bands (`*lo`/`*hi`
/// series), normalized to the cluster's fault-free run. Speculation is
/// on everywhere (the paper's default recovery), and the straggler
/// population keeps the bands non-degenerate even at rate 0.
///
/// # Errors
///
/// Returns the [`PhaseError`] of an unrecoverable baseline run (the
/// replicated points themselves absorb failed seeds as `failed_runs`).
pub fn fig20() -> Result<FigureData, PhaseError> {
    let [xeon, atom] = machines();
    type ClusterSpec<'a> = (&'a str, &'a MachineModel, Option<(usize, usize)>);
    let clusters: [ClusterSpec; 3] = [
        ("Xeon3", &xeon, None),
        ("Atom3", &atom, None),
        ("Mix1X2A", &xeon, Some((1, 2))),
    ];
    let point = |app: AppId, m: &MachineModel, mix: Option<(usize, usize)>| {
        let mut c = cfg(app, m)
            .data_per_node(data_for(app))
            .block_size(FAULT_BLOCK);
        if let Some((big, little)) = mix {
            c = c.mix(NodeMix {
                big,
                little,
                placement: PlacementKind::PaperClass(MetricKind::Edp),
            });
        }
        c
    };
    let mut f = FigureData::new(
        "fig20",
        "Replicated makespan and EDP vs failure rate, 95% confidence bands",
        "ratio",
    );
    for app in [AppId::WordCount, AppId::TeraSort] {
        for (who, m, mix) in clusters {
            let clean = try_simulate_cluster(&point(app, m, mix))?.0;
            let clean_t = clean.breakdown.total();
            let clean_edp = clean.exact_energy_j * clean_t;
            for rate in FAULT_RATES {
                let c = point(app, m, mix).faults(fig19_faults(rate, true));
                let s = ReplicationPlan::new(c, FIG20_SEED..FIG20_SEED + FIG20_SEEDS).run();
                let x = format!("{rate:.2}");
                let name = |metric: &str| format!("{metric}/{who}/{}", app.short_name());
                f.push(name("T"), x.clone(), s.makespan_s.mean / clean_t);
                f.push(name("Tlo"), x.clone(), s.makespan_s.lo() / clean_t);
                f.push(name("Thi"), x.clone(), s.makespan_s.hi() / clean_t);
                f.push(name("EDP"), x.clone(), s.edp.mean / clean_edp);
                f.push(name("EDPlo"), x.clone(), s.edp.lo() / clean_edp);
                f.push(name("EDPhi"), x, s.edp.hi() / clean_edp);
            }
        }
    }
    Ok(f)
}

/// ToR-uplink oversubscription factors swept in Fig. 21.
pub const OVERSUB_SWEEP: [f64; 3] = [1.0, 4.0, 16.0];

/// HDFS block sizes swept in Fig. 21 (the §3.1.1 block-size axis).
pub const TOPO_BLOCKS: [BlockSize; 3] = [BlockSize::MB_64, BlockSize::MB_256, BlockSize::MB_512];

/// Racks in the Fig. 21 fabric: three nodes per rack at 12 nodes.
pub const TOPO_RACKS: usize = 4;

/// Nodes in each Fig. 21 cluster — the Fig. 18 rosters scaled 4x, so a
/// replication-3 layout no longer covers every node and the locality
/// tiers become observable.
pub const TOPO_NODES: usize = 12;

/// Fig. 21 (model extension): locality-tier mix, phase times and EDP on
/// the two-tier rack fabric, sweeping ToR oversubscription × HDFS block
/// size over the Fig. 18 cluster shapes scaled to [`TOPO_NODES`] nodes
/// (TeraSort — the shuffle-heavy app). Small blocks outnumber the
/// cluster's slots, so late waves cannot find a free replica holder and
/// map reads leave the node (the tier mix shifts with block size), while
/// oversubscription throttles the cross-rack shuffle (reduce time and
/// EDP respond monotonically).
pub fn fig21() -> FigureData {
    // hhsim: allow(panic-in-engine): irrefutable [_; 2] destructure, not indexing
    let [xeon, atom] = machines();
    type ClusterSpec<'a> = (&'a str, &'a MachineModel, Option<(usize, usize)>);
    let clusters: [ClusterSpec; 3] = [
        ("Xeon12", &xeon, None),
        ("Atom12", &atom, None),
        ("Mix4X8A", &xeon, Some((4, 8))),
    ];
    let app = AppId::TeraSort;
    let mut sweep = Sweep::new();
    let mut rows = Vec::new();
    for (who, m, mix) in clusters {
        for block in TOPO_BLOCKS {
            for over in OVERSUB_SWEEP {
                let mut c = cfg(app, m)
                    .data_per_node(data_for(app))
                    .block_size(block)
                    .topology(Topology::racked(TOPO_RACKS, over));
                match mix {
                    Some((big, little)) => {
                        c = c.mix(NodeMix {
                            big,
                            little,
                            placement: PlacementKind::PaperClass(MetricKind::Edp),
                        });
                    }
                    None => c.nodes = TOPO_NODES,
                }
                let p = sweep.point(c);
                rows.push((who, block, over, p));
            }
        }
    }
    let meas = sweep.run();
    let mut f = FigureData::new(
        "fig21",
        "Locality-tier mix and EDP vs ToR oversubscription and block size",
        "mixed",
    );
    for (who, block, over, p) in rows {
        let Some(m) = meas.get(p) else { continue };
        let x = format!("{}MB/{over}x", block.bytes() >> 20);
        // hhsim: allow(panic-in-engine): irrefutable [_; 3] destructure, not indexing
        let [nl, rl, of] = m.map_locality_tiers;
        let total = (nl + rl + of).max(1) as f64;
        f.push(format!("EDP/{who}"), x.clone(), m.cost.edp());
        f.push(format!("Tred/{who}"), x.clone(), m.breakdown.reduce_s);
        f.push(format!("Tmap/{who}"), x.clone(), m.breakdown.map_s);
        f.push(format!("NL/{who}"), x.clone(), nl as f64 / total);
        f.push(format!("RL/{who}"), x.clone(), rl as f64 / total);
        f.push(format!("OF/{who}"), x, of as f64 / total);
    }
    f
}

/// Per-rack failure rates (expected ToR-switch crashes per hour) swept
/// in Fig. 22; 0 is the rack-fault-free baseline.
pub const FIG22_RATES: [f64; 4] = [0.0, 1.0, 4.0, 8.0];

/// Fault-seed replications behind every Fig. 22 point.
pub const FIG22_SEEDS: u64 = 32;

/// First fault seed of the Fig. 22 sweep (seeds run consecutively from
/// here); fixed so the checked-in artifacts regenerate byte-identically.
pub const FIG22_SEED: u64 = 0x00F2_25EE_D000;

/// ToR oversubscription of the Fig. 22 fabric (the middle of the
/// Fig. 21 sweep).
pub const FIG22_OVERSUB: f64 = 4.0;

/// The Fig. 22 fault model at one rack-failure rate (`per_hour`
/// expected switch crashes per rack per hour): correlated rack outages
/// on the [`TOPO_RACKS`]-rack fabric over the Fig. 19 straggler
/// background, so speculation has work at rate 0 and the sweep isolates
/// the cost of losing racks — cancelled shuffles, fetch-failure map
/// re-execution, off-rack recovery reads.
pub fn fig22_faults(per_hour: f64, speculation: bool) -> FaultConfig {
    let mut recovery = RecoveryPolicy::hadoop();
    recovery.speculation = speculation;
    recovery.spec_min_runtime_s = 2.0;
    let mut fc = FaultConfig::none()
        .seed(FIG22_SEED)
        .stragglers(0.4, 2.5)
        .recovery(recovery);
    if per_hour > 0.0 {
        fc = fc.domains(
            DomainConfig::none()
                .racks(TOPO_RACKS)
                .switch_mttf(3600.0 / per_hour),
        );
    }
    fc
}

/// Fig. 22 (model extension): makespan and EDP degradation vs rack
/// failure rate on the Fig. 21 12-node/4-rack clusters (TeraSort,
/// 256 MB blocks, 4x oversubscription), with and without speculation.
/// A switch crash takes a whole rack's nodes — and the map outputs on
/// them — offline at once: in-flight shuffle flows cancel, reduces
/// register fetch failures, and lost maps re-execute on surviving
/// replica holders. Each point replicates over [`FIG22_SEEDS`] fault
/// seeds; `T`/`EDP` report the mean over the replications that finish,
/// normalized to the cluster's rack-fault-free clean run, and `Pfail`
/// reports the fraction of seeds whose job died outright (every replica
/// of some block lost, or no usable node left) — the availability side
/// of the robustness story.
///
/// # Errors
///
/// Returns the [`PhaseError`] of an unrecoverable baseline run (the
/// replicated points themselves absorb failed seeds as `failed_runs`,
/// surfaced through the `Pfail` series).
pub fn fig22() -> Result<FigureData, PhaseError> {
    // hhsim: allow(panic-in-engine): irrefutable [_; 2] destructure, not indexing
    let [xeon, atom] = machines();
    type ClusterSpec<'a> = (&'a str, &'a MachineModel, Option<(usize, usize)>);
    let clusters: [ClusterSpec; 3] = [
        ("Xeon12", &xeon, None),
        ("Atom12", &atom, None),
        ("Mix4X8A", &xeon, Some((4, 8))),
    ];
    let app = AppId::TeraSort;
    let point = |m: &MachineModel, mix: Option<(usize, usize)>, rate: f64, spec: bool| {
        let mut c = cfg(app, m)
            .data_per_node(data_for(app))
            .block_size(BlockSize::MB_256)
            .topology(Topology::racked(TOPO_RACKS, FIG22_OVERSUB))
            .faults(fig22_faults(rate, spec));
        match mix {
            Some((big, little)) => {
                c = c.mix(NodeMix {
                    big,
                    little,
                    placement: PlacementKind::PaperClass(MetricKind::Edp),
                });
            }
            None => c.nodes = TOPO_NODES,
        }
        c
    };
    let mut f = FigureData::new(
        "fig22",
        "Makespan, EDP and job-failure probability vs rack failure rate",
        "ratio",
    );
    for (who, m, mix) in clusters {
        for speculation in [true, false] {
            let mode = if speculation { "spec" } else { "nospec" };
            // The clean anchor has no faults at all: degradation at rate 0
            // then shows the straggler background, like Fig. 19/20.
            let mut clean_cfg = point(m, mix, 0.0, speculation);
            clean_cfg.faults = None;
            let clean = try_simulate_cluster(&clean_cfg)?.0;
            let clean_t = clean.breakdown.total();
            let clean_edp = clean.exact_energy_j * clean_t;
            for rate in FIG22_RATES {
                let c = point(m, mix, rate, speculation);
                let s = ReplicationPlan::new(c, FIG22_SEED..FIG22_SEED + FIG22_SEEDS).run();
                let x = format!("{rate:.0}");
                let name = |metric: &str| format!("{metric}/{who}/{mode}");
                f.push(name("T"), x.clone(), s.makespan_s.mean / clean_t);
                f.push(name("EDP"), x.clone(), s.edp.mean / clean_edp);
                let p_fail = s.failed_runs as f64 / s.replications.max(1) as f64;
                f.push(name("Pfail"), x, p_fail);
            }
        }
    }
    Ok(f)
}

/// A figure/table generator: produces one artifact's data from scratch,
/// or a typed [`PhaseError`] when an unrecoverable fault configuration
/// fails the job ("job failed" diagnosis instead of a panic).
pub type Generator = fn() -> Result<FigureData, PhaseError>;

/// Every generator keyed by id, for the CLI harness.
pub fn all() -> Vec<(&'static str, Generator)> {
    vec![
        ("table1", (|| Ok(table1())) as Generator),
        ("table2", || Ok(table2())),
        ("fig1", || Ok(fig1())),
        ("fig2", || Ok(fig2())),
        ("fig3", || Ok(fig3())),
        ("fig4", || Ok(fig4())),
        ("fig5", || Ok(fig5())),
        ("fig6", || Ok(fig6())),
        ("fig7", || Ok(fig7())),
        ("fig8", || Ok(fig8())),
        ("fig9", || Ok(fig9())),
        ("fig10", || Ok(fig10())),
        ("fig11", || Ok(fig11())),
        ("fig12", || Ok(fig12())),
        ("fig13", || Ok(fig13())),
        ("fig14", || Ok(fig14())),
        ("fig15", || Ok(fig15())),
        ("fig16", || Ok(fig16())),
        ("table3", || Ok(table3())),
        ("fig17", || Ok(fig17())),
        ("fig18", || Ok(fig18())),
        ("fig19", fig19),
        ("fig20", fig20),
        ("fig21", || Ok(fig21())),
        ("fig22", fig22),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_paper_relationships() {
        let f = fig1();
        let xh = f.value("Xeon", "Avg_Hadoop").expect("present");
        let xs = f.value("Xeon", "Avg_Spec").expect("present");
        let ah = f.value("Atom", "Avg_Hadoop").expect("present");
        let as_ = f.value("Atom", "Avg_Spec").expect("present");
        assert!(xs / xh > 1.6, "Hadoop IPC far below SPEC on big core");
        assert!(as_ / ah > 1.2, "Hadoop IPC below SPEC on little core");
        assert!((1.2..=1.8).contains(&(xh / ah)), "paper: 1.43x");
    }

    #[test]
    fn fig2_gap_narrows_with_delay_pressure() {
        let f = fig2();
        for suite in ["Avg_Spec", "Avg_Hadoop"] {
            let e1 = f.value("ED1P", suite).expect("present");
            let e3 = f.value("ED3P", suite).expect("present");
            assert!(e3 < e1, "{suite}: delay pressure must favour Xeon");
        }
    }

    #[test]
    fn fig9_has_all_apps() {
        let f = fig9();
        for app in AppId::ALL {
            assert!(
                !f.series(app.full_name()).is_empty(),
                "{app} missing from fig9"
            );
        }
    }

    #[test]
    fn fig14_ratios_at_most_one() {
        let f = fig14();
        for r in &f.rows {
            assert!(
                r.value <= 1.05,
                "acceleration cannot increase Xeon's advantage: {} {} {}",
                r.series,
                r.x,
                r.value
            );
        }
    }

    #[test]
    fn all_generators_are_registered() {
        assert_eq!(all().len(), 25, "3 tables + 22 figure artifacts");
    }

    #[test]
    fn fig18_mixed_cluster_beats_both_homogeneous_somewhere() {
        let f = fig18();
        let edp = |series: &str, app: AppId| {
            f.rows
                .iter()
                .find(|r| r.series == series && r.x == app.short_name())
                .map(|r| r.value)
                .expect("fig18 row")
        };
        let wins = AppId::ALL.into_iter().any(|app| {
            let (x, a) = (edp("Xeon3", app), edp("Atom3", app));
            MIX_SWEEP
                .iter()
                .map(|(b, l)| edp(&format!("Mix{b}X{l}A"), app))
                .any(|m| m < x && m < a)
        });
        assert!(
            wins,
            "some mixed cluster must beat both homogeneous baselines on EDP"
        );
    }

    #[test]
    fn fig19_faults_degrade_and_speculation_recovers() {
        let f = fig19().expect("fig19 recovers from every injected fault");
        let val = |series: &str, rate: f64| {
            f.rows
                .iter()
                .find(|r| r.series == series && r.x == format!("{rate:.2}"))
                .map(|r| r.value)
                .expect("fig19 row")
        };
        // 2 apps x 3 clusters x 2 modes x 4 rates x 2 metrics.
        assert_eq!(f.rows.len(), 96);
        let (mut low, mut high, mut n) = (0.0, 0.0, 0.0);
        for app in ["WC", "TS"] {
            for who in ["Xeon3", "Atom3", "Mix1X2A"] {
                for mode in ["spec", "nospec"] {
                    let t = format!("T/{who}/{app}/{mode}");
                    // Stragglers alone already cost makespan at rate 0.
                    assert!(val(&t, 0.0) > 1.0, "{t}: stragglers must hurt");
                    low += val(&t, 0.0);
                    high += val(&t, 0.12);
                    n += 1.0;
                }
            }
        }
        // Re-execution makes the worst failure rate cost more on average.
        // (Not per-series: a task failing *on* the straggler node re-runs
        // elsewhere, which can shorten an individual critical path.)
        assert!(
            high / n > low / n,
            "mean degradation must grow with failure rate ({} vs {})",
            high / n,
            low / n
        );
        // The headline claim: on at least one workload, speculation claws
        // back part of the straggler-induced makespan loss.
        let recovered = ["WC", "TS"].iter().any(|app| {
            ["Xeon3", "Atom3", "Mix1X2A"].iter().any(|who| {
                val(&format!("T/{who}/{app}/spec"), 0.0)
                    < val(&format!("T/{who}/{app}/nospec"), 0.0)
            })
        });
        assert!(recovered, "speculation must beat no-speculation somewhere");
    }

    #[test]
    fn fig20_bands_bracket_means_and_widen_with_rate() {
        let f = fig20().expect("fig20's clean baselines cannot fail");
        // 2 apps x 3 clusters x 4 rates x 6 series (T/Tlo/Thi, EDP triple).
        assert_eq!(f.rows.len(), 144);
        let val = |series: &str, rate: f64| {
            f.rows
                .iter()
                .find(|r| r.series == series && r.x == format!("{rate:.2}"))
                .map(|r| r.value)
                .expect("fig20 row")
        };
        let (mut w0, mut w12) = (0.0, 0.0);
        for app in ["WC", "TS"] {
            for who in ["Xeon3", "Atom3", "Mix1X2A"] {
                for metric in ["T", "EDP"] {
                    let s = format!("{metric}/{who}/{app}");
                    for rate in FAULT_RATES {
                        let (lo, mid, hi) = (
                            val(&format!("{metric}lo/{who}/{app}"), rate),
                            val(&s, rate),
                            val(&format!("{metric}hi/{who}/{app}"), rate),
                        );
                        assert!(lo <= mid && mid <= hi, "{s}@{rate}: band must bracket mean");
                        assert!(
                            mid > 0.9,
                            "{s}@{rate}: faults cannot speed up the clean run"
                        );
                    }
                }
                // Confidence bands reflect seed spread: injected failures add
                // variance over the straggler-only baseline at rate 0.
                w0 += val(&format!("Thi/{who}/{app}"), 0.0) - val(&format!("Tlo/{who}/{app}"), 0.0);
                w12 +=
                    val(&format!("Thi/{who}/{app}"), 0.12) - val(&format!("Tlo/{who}/{app}"), 0.12);
            }
        }
        assert!(
            w12 > w0,
            "summed makespan band width must grow with failure rate ({w12} vs {w0})"
        );
    }

    #[test]
    fn fig21_tier_mix_shifts_and_oversubscription_bites() {
        let f = fig21();
        // 3 clusters x 3 blocks x 3 oversubscriptions x 6 series.
        assert_eq!(f.rows.len(), 162);
        let v = |series: String, x: String| {
            f.rows
                .iter()
                .find(|r| r.series == series && r.x == x)
                .map(|r| r.value)
                .expect("fig21 row")
        };
        for who in ["Xeon12", "Atom12", "Mix4X8A"] {
            // Tier fractions are a partition of the map tasks.
            for blk in ["64", "256", "512"] {
                for over in ["1", "4", "16"] {
                    let x = format!("{blk}MB/{over}x");
                    let sum = v(format!("NL/{who}"), x.clone())
                        + v(format!("RL/{who}"), x.clone())
                        + v(format!("OF/{who}"), x.clone());
                    assert!((sum - 1.0).abs() < 1e-9, "{who}@{x}: tier mix sums to 1");
                }
            }
            // Locality-tier mix shifts with block size: 64 MB floods the
            // slots and pushes reads off-node, 512 MB fits in waves that
            // keep every read on a replica holder.
            let nl_small = v(format!("NL/{who}"), "64MB/1x".into());
            let nl_large = v(format!("NL/{who}"), "512MB/1x".into());
            assert!(
                nl_small < nl_large,
                "{who}: node-local fraction must grow with block size \
                 ({nl_small} vs {nl_large})"
            );
            assert!(nl_small < 1.0, "{who}: small blocks must leave the node");
            // Reduce time and EDP respond monotonically to oversubscription.
            for blk in ["64", "256", "512"] {
                let at = |metric: &str, over: &str| {
                    v(format!("{metric}/{who}"), format!("{blk}MB/{over}x"))
                };
                for m in ["Tred", "EDP"] {
                    let (a, b, c) = (at(m, "1"), at(m, "4"), at(m, "16"));
                    assert!(
                        a <= b + 1e-9 && b <= c + 1e-9,
                        "{m}/{who}@{blk}MB must be monotone in oversubscription \
                         ({a} / {b} / {c})"
                    );
                }
                let (t1, t16) = (at("Tred", "1"), at("Tred", "16"));
                assert!(
                    t16 > t1,
                    "Tred/{who}@{blk}MB: 16x oversubscription must slow the \
                     shuffle ({t1} vs {t16})"
                );
            }
        }
    }

    #[test]
    fn fig22_rack_faults_degrade_and_jobs_start_dying() {
        let f = fig22().expect("fig22 baselines are fault-free and cannot fail");
        // 3 clusters x 2 modes x 4 rates x 3 series (T, EDP, Pfail).
        assert_eq!(f.rows.len(), 72);
        let val = |series: &str, rate: f64| {
            f.rows
                .iter()
                .find(|r| r.series == series && r.x == format!("{rate:.0}"))
                .map(|r| r.value)
                .expect("fig22 row")
        };
        let worst = *FIG22_RATES.last().expect("rates are non-empty");
        let (mut low, mut high, mut n) = (0.0, 0.0, 0.0);
        for who in ["Xeon12", "Atom12", "Mix4X8A"] {
            for mode in ["spec", "nospec"] {
                let t = format!("T/{who}/{mode}");
                // Stragglers alone already cost makespan at rate 0, and the
                // straggler-only sweep never loses a replica set.
                assert!(val(&t, 0.0) > 1.0, "{t}: stragglers must hurt");
                assert!(
                    val(&format!("Pfail/{who}/{mode}"), 0.0) == 0.0,
                    "Pfail/{who}/{mode}: no rack faults, no dead jobs"
                );
                // Job-failure probability is monotone in the rack rate.
                let mut prev = 0.0;
                for rate in FIG22_RATES {
                    let p = val(&format!("Pfail/{who}/{mode}"), rate);
                    assert!(
                        (0.0..=1.0).contains(&p) && p >= prev,
                        "Pfail/{who}/{mode}@{rate}: must be a monotone probability"
                    );
                    prev = p;
                }
                // Enough seeds must survive the worst rate for the
                // survivor-conditional means to stay meaningful.
                assert!(prev < 0.9, "Pfail/{who}/{mode}: worst rate drowns the mean");
                low += val(&t, 0.0);
                high += val(&t, worst);
                n += 1.0;
            }
        }
        // Losing racks costs: cancelled shuffles, off-rack recovery reads,
        // and re-executed maps make the mean degradation grow with rate.
        assert!(
            high / n > low / n,
            "mean degradation must grow with rack failure rate ({} vs {})",
            high / n,
            low / n
        );
        // The availability story has to actually show up somewhere: at the
        // worst rate some cluster loses jobs to dead replica sets.
        let dies = ["Xeon12", "Atom12", "Mix4X8A"].iter().any(|who| {
            ["spec", "nospec"]
                .iter()
                .any(|mode| val(&format!("Pfail/{who}/{mode}"), worst) > 0.0)
        });
        assert!(dies, "worst rack-failure rate must kill some replications");
    }
}
