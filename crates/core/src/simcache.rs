//! Unified memoization for the expensive, reusable pieces of a
//! simulation: trace-driven stall splits and functional MapReduce runs
//! (plus the dataflow ratios derived from them).
//!
//! The figure generators sweep thousands of [`crate::SimConfig`] points,
//! but only a handful of distinct (machine, profile) stall splits and
//! (app, functional-config) runs exist underneath them. This cache makes
//! those computations safe and cheap to share across a pool of worker
//! threads (see [`crate::harness`]): each entry is a `OnceLock` cell, so
//! concurrent requests for the *same* key compute the value exactly once
//! while requests for *different* keys proceed in parallel, and every
//! caller observes the identical value — a prerequisite for the harness's
//! determinism guarantee.
//!
//! The process-wide instance is [`SimCache::global`]; tests that need an
//! uncached reference can construct private instances with
//! [`SimCache::new`] and run [`crate::simulate_with`] against them.

// Keyed lookup only — entries are fetched by exact key and never
// iterated, so hash order cannot reach simulation output. Mirrors the
// `nondet-iteration` allow for this file in analysis.toml.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use hhsim_arch::{ComputeProfile, MachineModel};
use hhsim_faults::{FaultConfig, PhaseError};
use hhsim_hdfs::Topology;
use hhsim_workloads::{AppId, FunctionalConfig, FunctionalRun};
use parking_lot::Mutex;

use crate::cluster::{PhaseLocality, PhaseRun};
use crate::ratios::AppRatios;

/// (machine name, profile name): stall splits depend on nothing else.
type StallKey = (String, String);
/// Every field of [`FunctionalConfig`] plus the app: functional runs are
/// deterministic functions of exactly this tuple.
type RunKey = (AppId, u64, u64, u64, usize, u64);

/// One memoization table. Values sit behind per-key `OnceLock` cells so
/// a miss computes outside the map lock (no convoying) and concurrent
/// misses on one key deduplicate into a single computation.
type Table<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

/// Structural identity of one cluster-engine phase run — every input
/// `run_phase_faulty` sees, field by field (full equality, no lossy
/// digest). Sweeps that vary only reduce-side or fault parameters
/// produce identical map-phase keys and reuse the memoized
/// [`PhaseRun`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PhaseKey {
    /// Resolved placement policy: 0 = FIFO any-slot, 1 = prefer big
    /// cores, 2 = prefer little cores. The placement objects are
    /// stateless, so the code *is* the behavior.
    pub placement: u8,
    /// (big nodes, big slots/node, little nodes, little slots/node).
    pub roster: (usize, usize, usize, usize),
    /// Tasks in the phase.
    pub tasks: usize,
    /// Bit patterns of (big task_s, big overhead_s, little task_s,
    /// little overhead_s).
    pub timing: [u64; 4],
    /// Fault-injection identity, when the phase runs under faults.
    pub faults: Option<PhaseFaultKey>,
    /// Network-topology identity, when the phase runs on an active rack
    /// fabric. `None` means the legacy flat network, so every
    /// pre-topology key keeps its exact equality class.
    pub net: Option<PhaseNetKey>,
    /// FNV-1a digest of the fetch-failure recovery plan
    /// ([`fetch_digest`]), when the phase runs with one. `None` keeps
    /// every pre-fetch key's exact equality class.
    pub fetch: Option<u64>,
}

/// FNV-1a digest of every field of a [`FetchPlan`](crate::FetchPlan):
/// map-output holders, input replica sets, fabric parameters, per-tier
/// read penalties and per-node map timing. Same collision argument as
/// [`PhaseNetKey::digest`].
pub(crate) fn fetch_digest(plan: &crate::FetchPlan) -> u64 {
    let mut d = FNV_OFFSET;
    for &h in &plan.holders {
        d = fnv(d, h as u64);
    }
    for reps in &plan.map_replicas {
        // Replica-set delimiter: distinguishes [[1],[2]] from [[1,2]].
        d = fnv(d, u64::MAX);
        for &r in reps {
            d = fnv(d, r as u64);
        }
    }
    d = fnv(d, plan.topology.racks as u64);
    d = fnv(d, plan.topology.node_bytes_per_s.to_bits());
    d = fnv(d, plan.topology.core_bytes_per_s.to_bits());
    d = fnv(d, plan.topology.oversubscription.to_bits());
    for s in plan.read_seconds {
        d = fnv(d, s.to_bits());
    }
    for t in &plan.map_timing {
        d = fnv(d, t.task_seconds.to_bits());
        d = fnv(d, t.overhead_seconds.to_bits());
    }
    d
}

/// Identity of a phase's network inputs under an active [`Topology`]:
/// the fabric parameters plus a digest of the per-task locality layout
/// (map) or contended-shuffle penalties (reduce). A digest rather than
/// the full layout keeps the key small; collisions would need two
/// different layouts with equal FNV-1a over every replica id and f64
/// bit pattern *and* equal fabric parameters, which the deterministic
/// layout generator cannot produce within one process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PhaseNetKey {
    /// Rack count.
    pub racks: usize,
    /// Node-link bandwidth bits.
    pub node_bw: u64,
    /// Core-link bandwidth bits.
    pub core_bw: u64,
    /// Oversubscription factor bits.
    pub oversub: u64,
    /// FNV-1a digest of the per-task network inputs.
    pub digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a step over the eight little-endian bytes of `v`.
fn fnv(acc: u64, v: u64) -> u64 {
    v.to_le_bytes().iter().fold(acc, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

impl PhaseNetKey {
    fn base(t: &Topology) -> Self {
        PhaseNetKey {
            racks: t.racks,
            node_bw: t.node_bytes_per_s.to_bits(),
            core_bw: t.core_bytes_per_s.to_bits(),
            oversub: t.oversubscription.to_bits(),
            digest: FNV_OFFSET,
        }
    }

    /// Key for a map phase: digests the replica layout and the per-tier
    /// read penalties.
    pub fn for_map(t: &Topology, loc: &PhaseLocality) -> Self {
        let mut k = Self::base(t);
        let mut d = k.digest;
        d = fnv(d, loc.racks as u64);
        for s in loc.read_seconds {
            d = fnv(d, s.to_bits());
        }
        for reps in &loc.replicas {
            // Replica-set delimiter: distinguishes [[1],[2]] from [[1,2]].
            d = fnv(d, u64::MAX);
            for &r in reps {
                d = fnv(d, r as u64);
            }
        }
        k.digest = d;
        k
    }

    /// Key for a reduce phase: digests the per-task contended-shuffle
    /// penalty seconds.
    pub fn for_extras(t: &Topology, extras: &[f64]) -> Self {
        let mut k = Self::base(t);
        k.digest = extras.iter().fold(k.digest, |d, e| fnv(d, e.to_bits()));
        k
    }
}

/// The inputs `NodeFaults::sample` + `NodeFaults::phase` derive a
/// `PhaseFaults` from (node count lives in [`PhaseKey::roster`]): the
/// fault config's fields plus the per-phase projection parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PhaseFaultKey {
    /// Run seed.
    pub seed: u64,
    /// Phase index within the run.
    pub phase_idx: u64,
    /// Per-attempt failure rate bits for this phase.
    pub rate: u64,
    /// Phase start offset bits (node crashes project through it).
    pub offset: u64,
    /// Node MTTF bits, if crashes are enabled.
    pub mttf: Option<u64>,
    /// Straggler probability bits.
    pub straggler_rate: u64,
    /// Straggler slowdown bits.
    pub straggler_slowdown: u64,
    /// Recovery policy, field by field.
    pub max_attempts: u32,
    /// Backoff base bits.
    pub backoff: u64,
    /// Speculative execution enabled.
    pub speculation: bool,
    /// Speculation rate threshold bits.
    pub spec_rate_threshold: u64,
    /// Speculation minimum runtime bits.
    pub spec_min_runtime_s: u64,
    /// Blacklist threshold.
    pub blacklist_after: u32,
    /// Rack blacklist escalation threshold.
    pub rack_blacklist_after: u32,
    /// Failure-domain identity, when domains are active: (racks,
    /// switch MTTF bits, rack MTTF bits, link MTTF bits, link factor
    /// bits, link window bits). `None` keeps every pre-domain key's
    /// exact equality class.
    pub domains: Option<(usize, u64, u64, u64, u64, u64)>,
}

impl PhaseFaultKey {
    /// Key for the `PhaseFaults` that `NodeFaults::sample(fc, nodes)`
    /// followed by `.phase(fc, phase_idx, rate, offset_s)` produces.
    pub fn new(fc: &FaultConfig, phase_idx: u64, rate: f64, offset_s: f64) -> Self {
        PhaseFaultKey {
            seed: fc.seed,
            phase_idx,
            rate: rate.to_bits(),
            offset: offset_s.to_bits(),
            mttf: fc.node_mttf_s.map(f64::to_bits),
            straggler_rate: fc.straggler_rate.to_bits(),
            straggler_slowdown: fc.straggler_slowdown.to_bits(),
            max_attempts: fc.recovery.max_attempts,
            backoff: fc.recovery.backoff_base_s.to_bits(),
            speculation: fc.recovery.speculation,
            spec_rate_threshold: fc.recovery.spec_rate_threshold.to_bits(),
            spec_min_runtime_s: fc.recovery.spec_min_runtime_s.to_bits(),
            blacklist_after: fc.recovery.blacklist_after,
            rack_blacklist_after: fc.recovery.rack_blacklist_after,
            domains: fc.domains.active().then(|| {
                let d = &fc.domains;
                let bits = |m: Option<f64>| m.map_or(0, f64::to_bits);
                (
                    d.racks,
                    bits(d.switch_mttf_s),
                    bits(d.rack_mttf_s),
                    bits(d.link_mttf_s),
                    d.link_factor.to_bits(),
                    d.link_window_s.to_bits(),
                )
            }),
        }
    }
}

/// Largest phase (in tasks) the phase table memoizes. A `PhaseRun`
/// retains one span per attempt, so million-task scale runs bypass the
/// cache rather than pinning hundreds of MB.
const PHASE_MEMO_MAX_TASKS: usize = 65_536;

/// Counters and sizes describing cache effectiveness at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from an already-computed entry.
    pub hits: u64,
    /// Lookups that had to compute (or wait for) a fresh entry.
    pub misses: u64,
    /// Distinct (machine, profile) stall splits held.
    pub stall_entries: usize,
    /// Distinct functional runs held.
    pub run_entries: usize,
    /// Distinct per-app ratio sets held.
    pub ratio_entries: usize,
    /// Distinct cluster-engine phase runs held.
    pub phase_entries: usize,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter difference since an earlier snapshot (entry counts are
    /// reported as-is: they are already absolute).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            ..*self
        }
    }
}

/// Thread-safe memo of stall splits, functional runs and app ratios.
#[derive(Default)]
pub struct SimCache {
    stalls: Table<StallKey, (f64, f64)>,
    runs: Table<RunKey, Arc<FunctionalRun>>,
    ratios: Table<AppId, AppRatios>,
    phases: Table<PhaseKey, Arc<PhaseRun>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SimCache {
    /// An empty private cache (for tests and uncached references).
    pub fn new() -> Self {
        SimCache::default()
    }

    /// The process-wide cache shared by [`crate::simulate`] and the
    /// sweep harness.
    pub fn global() -> &'static SimCache {
        static GLOBAL: OnceLock<SimCache> = OnceLock::new();
        GLOBAL.get_or_init(SimCache::new)
    }

    /// Core memoization step: fetch-or-create the key's cell, then
    /// initialize it outside the map lock. Exactly one caller runs
    /// `compute` per key; latecomers block on the cell and count a hit
    /// (they did no work).
    fn memo<K, V>(&self, table: &Table<K, V>, key: K, compute: impl FnOnce() -> V) -> V
    where
        K: Eq + Hash,
        V: Clone,
    {
        let cell = Arc::clone(table.lock().entry(key).or_default());
        let mut computed = false;
        let value = cell
            .get_or_init(|| {
                computed = true;
                compute()
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Memoized trace-driven stall split: the cache simulation replays
    /// hundreds of thousands of accesses but depends only on (machine,
    /// profile), never on frequency or data size.
    pub fn stall_split(&self, machine: &MachineModel, profile: &ComputeProfile) -> (f64, f64) {
        self.memo(
            &self.stalls,
            (machine.name.clone(), profile.name.clone()),
            || machine.stall_split(profile),
        )
    }

    /// Memoized functional MapReduce run of `app` under `cfg`. The run
    /// executes the real engine at MB scale, so it is by far the most
    /// expensive cacheable unit; [`JobStats`](hhsim_mapreduce::JobStats)
    /// land behind an `Arc` to keep hits allocation-free.
    pub fn functional_run(&self, app: AppId, cfg: &FunctionalConfig) -> Arc<FunctionalRun> {
        let key = (
            app,
            cfg.input_bytes,
            cfg.block_bytes,
            cfg.sort_buffer_bytes,
            cfg.num_reducers,
            cfg.seed,
        );
        self.memo(&self.runs, key, || Arc::new(app.run_functional(cfg)))
    }

    /// Memoized dataflow ratios of `app`, built from the two reference
    /// functional runs (which are themselves cached individually).
    pub fn ratios(&self, app: AppId) -> AppRatios {
        self.memo(&self.ratios, app, || {
            let reference = self.functional_run(app, &AppRatios::reference_config());
            let small = self.functional_run(app, &AppRatios::small_config());
            AppRatios::from_runs(&reference, &small)
        })
    }

    /// Memoized cluster-engine phase run. Unlike [`SimCache::memo`]'s
    /// `OnceLock` path the computation is fallible, so a miss computes
    /// first and publishes on success; errors are never cached.
    /// Identical keys always compute identical runs (the engine is a
    /// pure function of the key), so a lost publish race costs a
    /// duplicated computation, never a different value.
    pub(crate) fn phase_run(
        &self,
        key: PhaseKey,
        compute: impl FnOnce() -> Result<PhaseRun, PhaseError>,
    ) -> Result<Arc<PhaseRun>, PhaseError> {
        if key.tasks > PHASE_MEMO_MAX_TASKS {
            return compute().map(Arc::new);
        }
        let cell = Arc::clone(self.phases.lock().entry(key).or_default());
        if let Some(v) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(v));
        }
        let run = Arc::new(compute()?);
        match cell.set(Arc::clone(&run)) {
            Ok(()) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(cell.get().cloned().unwrap_or(run))
    }

    /// Current counters and per-table entry counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stall_entries: self.stalls.lock().len(),
            run_entries: self.runs.lock().len(),
            ratio_entries: self.ratios.lock().len(),
            phase_entries: self.phases.lock().len(),
        }
    }

    /// Drops every entry and zeroes the counters (benchmarks use this to
    /// measure cold-cache behaviour without a fresh process).
    pub fn clear(&self) {
        self.stalls.lock().clear();
        self.runs.lock().clear();
        self.ratios.lock().clear();
        self.phases.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhsim_arch::presets;

    #[test]
    fn stall_split_hits_after_first_miss() {
        let c = SimCache::new();
        let m = presets::atom_c2758();
        let p = ComputeProfile::hadoop_average();
        let a = c.stall_split(&m, &p);
        let b = c.stall_split(&m, &p);
        assert_eq!(a, b);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stall_entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratios_match_direct_computation() {
        let c = SimCache::new();
        let cached = c.ratios(AppId::WordCount);
        let direct = AppRatios::compute(AppId::WordCount);
        assert_eq!(cached, direct);
        // The two reference runs landed in the run table.
        assert_eq!(c.stats().run_entries, 2);
        assert_eq!(c.stats().ratio_entries, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let c = SimCache::new();
        c.ratios(AppId::Sort);
        c.clear();
        let s = c.stats();
        assert_eq!(s, CacheStats::default());
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let c = SimCache::new();
        let m = presets::xeon_e5_2420();
        let p = ComputeProfile::hadoop_average();
        let splits: Vec<(f64, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8).map(|_| s.spawn(|| c.stall_split(&m, &p))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(splits.windows(2).all(|w| w[0] == w[1]));
        let s = c.stats();
        assert_eq!(s.misses, 1, "one computation for eight lookups");
        assert_eq!(s.hits, 7);
    }
}
