//! The node/cluster timing and energy model.
//!
//! For a given (application, machine, frequency, block size, data size,
//! core count) this module prices every component the paper discusses:
//!
//! * **compute** — instructions per byte × CPI from the trace-driven cache
//!   simulation (per phase profile, per machine, per DVFS point);
//! * **I/O path CPU** — kernel/copy/serialization instructions charged per
//!   I/O byte; this is how a wimpy core becomes CPU-bound on I/O-heavy
//!   work even though the disks are identical;
//! * **disk** — seek+bandwidth per block read, spill writes, multi-pass
//!   merges (spill counts recomputed analytically at target scale), with
//!   slot contention on the node's disk;
//! * **network** — cross-node shuffle at NIC bandwidth;
//! * **memory pressure** — when a node's working footprint outgrows its
//!   8 GB of DRAM, page-cache effectiveness collapses and I/O inflates;
//!   the big core's deeper buffering absorbs this far better (§3.3);
//! * **overlap** — the out-of-order core hides a large fraction of I/O
//!   wait behind computation (§3.1.1), the in-order core does not;
//! * **framework overhead** — per-task launch plus serial master↔slave
//!   bookkeeping (what makes 32 MB blocks slow), and per-job
//!   setup/cleanup (what makes Grep's "others" phase big).
//!
//! Wall-clock phase times come from the event-driven cluster engine
//! ([`crate::cluster`]): tasks are placed on first-class nodes and drain
//! in waves, and every task leaves a trace span. A homogeneous
//! [`SimConfig`] reproduces the paper's 3-node single-ISA cluster; a
//! [`NodeMix`] runs the §3.5 heterogeneous study with big and little
//! nodes side by side under a pluggable placement policy
//! ([`simulate_cluster`]). Power comes from the machine's CV²f model
//! sampled by the simulated Wattsup meter with idle subtraction — on
//! mixed clusters the meter samples the engine's *time-resolved*
//! per-node slot occupancy instead of phase averages.

use hhsim_accel::AccelConfig;
use hhsim_arch::{presets, ComputeProfile, CoreKind, Frequency, MachineModel};
use hhsim_energy::{
    CostMetrics, MeterReading, MetricKind, PowerMeter, PowerTrace, StreamingMeter,
    UtilizationTimeline,
};
use hhsim_hdfs::{
    BlockId, BlockSize, DiskModel, HdfsDefault, LocalityTier, NodeId, PlacementRequest,
    ReplicaPlacement, Topology,
};
use hhsim_mapreduce::{JobConfig, PhaseBreakdown};
use hhsim_sched::JobClass;
use hhsim_workloads::{AppClass, AppId};
use serde::{Deserialize, Serialize};

use hhsim_faults::{FaultConfig, FaultStats, NodeFaults, PhaseError};

use crate::cluster::{
    run_phase, run_phase_faulty, run_phase_faulty_fetch, Cluster, ClusterTimeline, FetchPlan,
    FifoAnySlot, KindPreferring, NodeTiming, PhaseLoad, PhaseLocality, PhaseRun, Placement,
    SlotStats, TaskSet,
};
use crate::ratios::JobRatios;
use crate::shuffle;
use crate::simcache::{fetch_digest, PhaseFaultKey, PhaseKey, PhaseNetKey, SimCache};

/// Framework instructions charged per task launch (JVM spin-up, split
/// bookkeeping, heartbeats).
const TASK_OVERHEAD_INSTR: f64 = 2.0e9;
/// Serial master-side instructions per task (job tracker bookkeeping).
const MASTER_INSTR_PER_TASK: f64 = 0.2e9;
/// Per-job setup and cleanup wall time, seconds. Dominated by the job
/// client's submission/poll protocol and fixed framework sleeps, so it is
/// machine-independent (paper: significant for Grep, which runs two jobs).
const JOB_SETUP_S: f64 = 4.5;
const JOB_CLEANUP_S: f64 = 3.2;
/// NIC bandwidth per node, bytes/s (1 GbE, the paper's era).
const NET_BYTES_PER_S: f64 = 117.0e6;
/// HDFS default replication factor for topology-aware block layouts.
const HDFS_REPLICATION: usize = 3;
/// Seed of the deterministic HDFS-default layout priced by
/// topology-active runs; chained jobs get distinct layouts via XOR.
const TOPOLOGY_LAYOUT_SEED: u64 = 0x0048_4446_534C_4159;
/// Replication factor charged on final output writes.
const OUTPUT_REPLICATION: f64 = 2.0;

/// Placement policy selector for a mixed-cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementKind {
    /// First free slot in node order — the baseline scheduler.
    FifoAny,
    /// The paper's §3.5 class-driven procedure optimizing the given goal
    /// ([`hhsim_sched::paper_schedule`] via [`KindPreferring`]).
    PaperClass(MetricKind),
    /// Pin the preference to big nodes.
    PreferBig,
    /// Pin the preference to little nodes.
    PreferLittle,
}

/// An explicit heterogeneous cluster composition for [`simulate_cluster`]:
/// `big` Xeon nodes plus `little` Atom nodes (presets at the config's
/// DVFS point). When set, it replaces `SimConfig::nodes`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeMix {
    /// Number of big (Xeon) nodes.
    pub big: usize,
    /// Number of little (Atom) nodes.
    pub little: usize,
    /// How tasks pick nodes.
    pub placement: PlacementKind,
}

/// One experiment point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Application under test.
    pub app: AppId,
    /// Machine model (Xeon or Atom preset, possibly modified).
    pub machine: MachineModel,
    /// DVFS operating frequency.
    pub frequency: Frequency,
    /// HDFS block size.
    pub block_size: BlockSize,
    /// Input data per node, bytes (paper: 1 GB micro / 10 GB real world,
    /// swept to 20 GB in §3.3).
    pub data_per_node_bytes: u64,
    /// Cluster size (paper: 3 nodes).
    pub nodes: usize,
    /// Map slots per node; `None` = all cores of the machine. The paper's
    /// Table 3 sets mappers = cores and sweeps 2–8.
    pub mappers_per_node: Option<usize>,
    /// Engine knobs (sort buffer, merge factor).
    pub job: JobConfig,
    /// Optional FPGA offload of the map phase (§3.4).
    pub accel: Option<AccelConfig>,
    /// Optional heterogeneous node mix (§3.5). `None` = homogeneous
    /// cluster of `machine`.
    #[serde(default)]
    pub node_mix: Option<NodeMix>,
    /// Optional deterministic fault injection. `None` or an inactive
    /// config ([`FaultConfig::none`]) leaves every fault-free result
    /// bit-identical; an active config routes the run through the
    /// fault-aware cluster engine.
    #[serde(default)]
    pub faults: Option<FaultConfig>,
    /// Optional two-tier rack fabric (node → ToR → core). `None` or an
    /// inactive topology ([`Topology::flat`]) leaves every result
    /// bit-identical to the flat network; an active topology routes the
    /// run through the cluster engine with HDFS-default map placement
    /// (locality tiers priced per task) and flow-fair contended shuffle.
    #[serde(default)]
    pub topology: Option<Topology>,
}

impl SimConfig {
    /// A paper-default configuration: 3 nodes, 1 GB/node for micro-
    /// benchmarks or 10 GB/node for real-world applications, 512 MB
    /// blocks, 1.8 GHz.
    pub fn new(app: AppId, machine: MachineModel) -> Self {
        let data = if app.is_real_world() {
            10u64 << 30
        } else {
            1u64 << 30
        };
        SimConfig {
            app,
            machine,
            frequency: Frequency::GHZ_1_8,
            block_size: BlockSize::MB_512,
            data_per_node_bytes: data,
            nodes: 3,
            mappers_per_node: None,
            job: JobConfig::default(),
            accel: None,
            node_mix: None,
            faults: None,
            topology: None,
        }
    }

    /// Sets the DVFS point.
    pub fn frequency(mut self, f: Frequency) -> Self {
        self.frequency = f;
        self
    }

    /// Sets the HDFS block size.
    pub fn block_size(mut self, b: BlockSize) -> Self {
        self.block_size = b;
        self
    }

    /// Sets the per-node input size in bytes.
    pub fn data_per_node(mut self, bytes: u64) -> Self {
        self.data_per_node_bytes = bytes;
        self
    }

    /// Sets map slots per node (the scheduling study's M).
    pub fn mappers(mut self, m: usize) -> Self {
        self.mappers_per_node = Some(m);
        self
    }

    /// Installs a map-phase accelerator.
    pub fn accelerator(mut self, a: AccelConfig) -> Self {
        self.accel = Some(a);
        self
    }

    /// Replaces the homogeneous cluster with a big+little mix.
    pub fn mix(mut self, mix: NodeMix) -> Self {
        self.node_mix = Some(mix);
        self
    }

    /// Injects deterministic faults (task failures, node crashes,
    /// stragglers) with Hadoop-style recovery.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Installs a rack fabric (racks, per-tier bandwidth, ToR uplink
    /// oversubscription).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = Some(t);
        self
    }

    /// The fault config, if it would actually inject anything.
    fn active_faults(&self) -> Option<FaultConfig> {
        self.faults.filter(FaultConfig::active)
    }

    /// The topology, if it would actually change anything.
    fn active_topology(&self) -> Option<Topology> {
        self.topology.filter(Topology::active)
    }

    fn slots_per_node(&self) -> usize {
        self.mappers_per_node
            .unwrap_or(self.machine.num_cores)
            .max(1)
    }
}

/// Time and power of one phase on one node.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Wall-clock seconds of the phase.
    pub seconds: f64,
    /// Dynamic (above idle) node power during the phase, watts.
    pub dynamic_watts: f64,
    /// CPU share of one task's time (diagnostics/ablation).
    pub cpu_seconds_per_task: f64,
    /// Raw (pre-overlap) disk+network share of one task's time.
    pub io_seconds_per_task: f64,
}

impl PhaseCost {
    /// Dynamic energy of the phase across `nodes` nodes, joules.
    pub fn energy_j(&self, nodes: usize) -> f64 {
        self.seconds * self.dynamic_watts * nodes as f64
    }
}

/// Everything measured for one experiment point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Configuration echo (app/machine identifiers for reports).
    pub app: AppId,
    /// Machine name.
    pub machine_name: String,
    /// Wall-clock phase breakdown.
    pub breakdown: PhaseBreakdown,
    /// Map phase detail.
    pub map: PhaseCost,
    /// Reduce phase detail.
    pub reduce: PhaseCost,
    /// Others (setup/cleanup/master) detail.
    pub others: PhaseCost,
    /// Map-phase slot admission counters from the cluster engine
    /// (queueing delay, peak occupancy), summed over chained jobs.
    #[serde(default)]
    pub map_slots: SlotStats,
    /// Reduce-phase slot admission counters.
    #[serde(default)]
    pub reduce_slots: SlotStats,
    /// Fault and recovery counters over all phases (all zero without
    /// fault injection).
    #[serde(default)]
    pub faults: FaultStats,
    /// Map tasks per locality tier `[node-local, rack-local, off-rack]`
    /// over all jobs. Without an active topology every map read is
    /// node-local, so this stays `[n_map, 0, 0]`-shaped only on the
    /// cluster-engine path and `[0, 0, 0]` on the analytic path.
    #[serde(default)]
    pub map_locality_tiers: [u64; 3],
    /// Simulated Wattsup reading over the whole run (one node).
    pub reading: MeterReading,
    /// Total dynamic energy over all nodes, joules — the 1 Hz metered
    /// estimate the paper's methodology (and every checked-in figure)
    /// is built on.
    pub energy_j: f64,
    /// Exact event-driven dynamic energy over all nodes, joules: the
    /// piecewise integral of each node's power step function, free of
    /// 1 Hz sampling error. New analyses (fig. 20, the replication
    /// engine) consume this; `energy_j` stays the metered view for
    /// golden-artifact stability.
    #[serde(default)]
    pub exact_energy_j: f64,
    /// Whole-application cost metrics (energy, delay, engaged area).
    pub cost: CostMetrics,
    /// Map-phase-only cost metrics.
    pub map_cost: CostMetrics,
    /// Reduce-phase-only cost metrics.
    pub reduce_cost: CostMetrics,
    /// IPC the core model sustains on this app's map profile (Fig. 1).
    pub map_ipc: f64,
}

/// Memory-pressure multiplier on I/O time: footprint beyond DRAM divides
/// the page cache's hit rate. The big core's deeper queues and smarter
/// prefetch absorb pressure far better (§3.3: Atom's execution time grows
/// much faster with data size).
fn memory_pressure(machine: &MachineModel, footprint_bytes: f64) -> f64 {
    let mem = machine.memory_gb * (1u64 << 30) as f64;
    let over = (footprint_bytes / mem - 0.35).max(0.0);
    let sensitivity = match machine.core.kind {
        CoreKind::Big => 0.08,
        CoreKind::Little => 0.32,
    };
    (1.0 + sensitivity * over).min(2.5)
}

/// Seconds of CPU time for `instructions` of `profile` on `machine` at
/// `f`, using memoizable stalls.
fn cpu_seconds(
    machine: &MachineModel,
    profile: &ComputeProfile,
    stalls: (f64, f64),
    f: Frequency,
    instructions: f64,
) -> f64 {
    instructions * machine.cpi_with_stalls(profile, f, stalls.0, stalls.1) / f.hz()
}

/// The scheduler-facing class of an application ([`AppClass`] mapped onto
/// [`hhsim_sched`]'s vocabulary).
pub fn job_class(app: AppId) -> JobClass {
    match app.class() {
        AppClass::Compute => JobClass::Compute,
        AppClass::Io => JobClass::Io,
        AppClass::Hybrid => JobClass::Hybrid,
    }
}

/// Cluster-independent shape of one machine's view of the cluster, fed
/// to [`job_timing`].
#[derive(Debug, Clone, Copy)]
struct ClusterShape {
    /// Task slots on the node being priced.
    slots: usize,
    /// Task slots across the whole cluster.
    total_slots: usize,
    /// Number of nodes in the cluster.
    nodes: usize,
}

/// Per-task timing of one chained job's phases on one machine model.
#[derive(Debug, Clone, Copy)]
struct JobTiming {
    map_task_s: f64,
    red_task_s: f64,
    map_cpu_task: f64,
    map_io_task: f64,
    red_cpu_task: f64,
    red_io_task: f64,
    n_map: usize,
    n_red: usize,
    /// Bytes one map task reads — what a non-local read moves over the
    /// network when a topology is active.
    map_task_bytes: f64,
    /// Bytes one reduce task pulls in the shuffle (after skew) — the
    /// contended-shuffle engine's per-reducer demand.
    red_input_bytes: f64,
}

/// Prices one chained job's map and reduce tasks on `m` — the analytic
/// half of the model. Wave scheduling of the resulting [`TaskSet`]s is
/// the cluster engine's job. Task counts (`n_map`, `n_red`) depend only
/// on data volume and cluster shape, never on `m`, so heterogeneous
/// clusters can price the same task list per node kind.
#[allow(clippy::too_many_arguments)]
fn job_timing(
    m: &MachineModel,
    f: Frequency,
    cache: &SimCache,
    disk: &DiskModel,
    job: &JobRatios,
    jobcfg: &JobConfig,
    shape: ClusterShape,
    data_per_node_bytes: u64,
    block: u64,
    map_prof: &ComputeProfile,
    red_prof: &ComputeProfile,
) -> JobTiming {
    let data_total = data_per_node_bytes * shape.nodes as u64;
    let slots = shape.slots;
    let total_slots = shape.total_slots;
    let map_stalls = cache.stall_split(m, map_prof);
    let red_stalls = cache.stall_split(m, red_prof);

    // ------------------------------------------------------------------
    // Map phase of this job.
    // ------------------------------------------------------------------
    let job_input = (data_total as f64 * job.input_fraction).max(1.0);
    let n_map = ((job_input / block as f64).ceil() as usize).max(1);
    let task_input = job_input / n_map as f64;

    // Spill/merge structure at target scale. The materialized volume
    // of any spill or merge is capped by the distinct key space when a
    // combiner runs (duplicates collapse), which makes combining far
    // more effective at production buffer sizes than at MB scale.
    let emitted = task_input * job.map_selectivity;
    let spills = (emitted / jobcfg.sort_buffer_bytes as f64).ceil().max(1.0);
    let merge_passes = jobcfg.merge_passes(spills as usize) as f64;
    let key_cap_task = job.distinct_key_bytes_at(task_input).max(1.0);
    let (materialized, spill_write) = if job.has_combiner {
        let per_spill = (emitted / spills).min(jobcfg.sort_buffer_bytes as f64);
        // One spill sees only `task_input / spills` of input, so its
        // combiner output is capped by *that slice's* key space.
        let key_cap_spill = job.distinct_key_bytes_at(task_input / spills).max(1.0);
        let spill_out = per_spill.min(key_cap_spill);
        // The combiner reruns during the merge: the final task output
        // is again capped by the whole task's key space.
        (emitted.min(key_cap_task), spills * spill_out)
    } else {
        (emitted * job.combine_ratio, emitted * job.combine_ratio)
    };
    let merge_io = (spill_write + materialized) * merge_passes;

    let map_io_bytes = task_input + spill_write + merge_io;
    let t_cpu_map = cpu_seconds(
        m,
        map_prof,
        map_stalls,
        f,
        task_input * map_prof.instr_per_byte,
    ) + m.core.io_path_seconds(map_io_bytes, f);

    let map_concurrency = slots.min(n_map.div_ceil(shape.nodes)).max(1) as f64;
    // Concurrent task streams interleave on the node disk: the
    // effective sequential chunk shrinks with concurrency — why small
    // blocks hurt I/O-bound jobs most (§3.1.1).
    let read_chunk = (block / map_concurrency as u64).max(1 << 20);
    let write_chunk = ((32 << 20) / map_concurrency as u64).max(1 << 20);
    let footprint =
        data_per_node_bytes as f64 * job.input_fraction * (1.0 + job.map_selectivity.min(1.5));
    let pressure = memory_pressure(m, footprint);
    let mut t_disk_map = (disk.read_seconds(task_input as u64, read_chunk)
        + disk.write_seconds((spill_write + merge_io) as u64, write_chunk))
        * map_concurrency
        * pressure;

    // Shuffle/output volumes.
    let shuffle_total = if job.has_reduce {
        materialized * n_map as f64
    } else {
        0.0
    };
    let output_total = if job.has_combiner {
        (job_input * job.output_selectivity).min(job.distinct_key_bytes_at(job_input) * 2.0)
    } else {
        job_input * job.output_selectivity
    };

    // Map-only jobs write their output from the map task.
    let mut t_cpu_map = t_cpu_map;
    if !job.has_reduce && output_total > 0.0 {
        let out_per_task = output_total / n_map as f64 * OUTPUT_REPLICATION;
        t_disk_map +=
            disk.write_seconds(out_per_task as u64, write_chunk) * map_concurrency * pressure;
        t_cpu_map += m.core.io_path_seconds(out_per_task, f);
    }
    let map_task_s = t_cpu_map + t_disk_map * (1.0 - m.core.io_overlap);

    // ------------------------------------------------------------------
    // Reduce phase of this job.
    // ------------------------------------------------------------------
    let n_red = if job.has_reduce {
        (total_slots / 2).max(1)
    } else {
        0
    };
    let (red_task_s, t_cpu_red, t_io_red_raw, red_input_bytes) = if n_red > 0 {
        let red_input = shuffle_total / n_red as f64 * job.reduce_skew.min(1.5);
        let red_concurrency = slots.min(n_red.div_ceil(shape.nodes)).max(1) as f64;
        // Cross-node shuffle transfer (the local share stays on-node).
        let cross = red_input * (shape.nodes as f64 - 1.0) / shape.nodes as f64;
        let t_net = cross / NET_BYTES_PER_S * red_concurrency;
        // Reduce-side merge passes over n_map segments.
        let passes = {
            let mut segs = n_map;
            let mut p = 0u32;
            while segs > jobcfg.merge_factor {
                segs = segs.div_ceil(jobcfg.merge_factor);
                p += 1;
            }
            p as f64
        };
        let merge_bytes = red_input * passes * 2.0;
        let out_bytes = output_total / n_red as f64 * OUTPUT_REPLICATION;
        let io_bytes = red_input + merge_bytes + out_bytes;
        let t_cpu = cpu_seconds(
            m,
            red_prof,
            red_stalls,
            f,
            red_input * red_prof.instr_per_byte,
        ) + m.core.io_path_seconds(io_bytes, f);
        let red_chunk = ((32 << 20) / red_concurrency as u64).max(1 << 20);
        let t_disk = (disk.write_seconds((merge_bytes + out_bytes) as u64, red_chunk)
            + disk.read_seconds(red_input as u64, red_chunk))
            * red_concurrency
            * pressure;
        let t_io_raw = t_disk + t_net;
        let task_s = t_cpu + t_io_raw * (1.0 - m.core.io_overlap);
        (task_s, t_cpu, t_io_raw, red_input)
    } else {
        (0.0, 0.0, 0.0, 0.0)
    };

    JobTiming {
        map_task_s,
        red_task_s,
        map_cpu_task: t_cpu_map,
        map_io_task: t_disk_map,
        red_cpu_task: t_cpu_red,
        red_io_task: t_io_red_raw,
        n_map,
        n_red,
        map_task_bytes: task_input,
        red_input_bytes,
    }
}

/// Per-job intermediate totals used to assemble the measurement.
struct JobPhases {
    map_wall: f64,
    reduce_wall: f64,
    map_cpu_task: f64,
    map_io_task: f64,
    red_cpu_task: f64,
    red_io_task: f64,
    map_task_s: f64,
    red_task_s: f64,
    n_map: usize,
    n_red: usize,
}

/// Runs the full model for one experiment point, memoizing shared state
/// (stall splits, functional runs) in the process-wide [`SimCache`].
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero nodes or zero data).
pub fn simulate(cfg: &SimConfig) -> Measurement {
    simulate_with(cfg, SimCache::global())
}

/// [`simulate`] against an explicit cache. Passing a fresh
/// [`SimCache::new`] gives a fully uncached evaluation — the reference
/// the cache-consistency property tests compare against.
pub fn simulate_with(cfg: &SimConfig, cache: &SimCache) -> Measurement {
    if cfg.node_mix.is_some() || cfg.active_faults().is_some() || cfg.active_topology().is_some() {
        return simulate_cluster_with(cfg, cache).0;
    }
    assert!(cfg.nodes > 0, "need at least one node");
    assert!(cfg.data_per_node_bytes > 0, "need input data");
    let m = &cfg.machine;
    let f = cfg.frequency;
    let ratios = cache.ratios(cfg.app);
    let disk = DiskModel::sata_7200();
    let slots = cfg.slots_per_node();
    let total_slots = slots * cfg.nodes;
    let block = cfg.block_size.bytes();
    let shape = ClusterShape {
        slots,
        total_slots,
        nodes: cfg.nodes,
    };

    // Stall splits are frequency-independent: compute once per profile.
    let map_prof = cfg.app.map_profile();
    let red_prof = cfg.app.reduce_profile();
    let map_stalls = cache.stall_split(m, &map_prof);
    let hadoop_avg = ComputeProfile::hadoop_average();
    let hadoop_stalls = cache.stall_split(m, &hadoop_avg);
    // Task launch (JVM spin-up) penalizes the little core beyond its CPI
    // gap: cold-start code is branchy, serial and cache-hostile.
    let overhead_factor = match m.core.kind {
        CoreKind::Big => 1.0,
        CoreKind::Little => 1.8,
    };
    let t_task_overhead =
        cpu_seconds(m, &hadoop_avg, hadoop_stalls, f, TASK_OVERHEAD_INSTR) * overhead_factor;

    // The wave scheduler: every node identical, first-free-slot placement.
    let cluster = Cluster::homogeneous(m.core.kind, cfg.nodes, slots);
    let mut map_slots_stats = SlotStats::default();
    let mut reduce_slots_stats = SlotStats::default();

    let mut phases: Vec<JobPhases> = Vec::with_capacity(ratios.jobs.len());
    for job in &ratios.jobs {
        let t = job_timing(
            m,
            f,
            cache,
            &disk,
            job,
            &cfg.job,
            shape,
            cfg.data_per_node_bytes,
            block,
            &map_prof,
            &red_prof,
        );
        let map_run = run_phase(
            &cluster,
            &PhaseLoad::uniform(
                &TaskSet {
                    tasks: t.n_map,
                    task_seconds: t.map_task_s,
                    overhead_seconds: t_task_overhead,
                },
                &cluster,
            ),
            &mut FifoAnySlot,
        );
        map_slots_stats.absorb(&map_run.slots);
        let reduce_wall = if t.n_red > 0 {
            let red_run = run_phase(
                &cluster,
                &PhaseLoad::uniform(
                    &TaskSet {
                        tasks: t.n_red,
                        task_seconds: t.red_task_s,
                        overhead_seconds: t_task_overhead,
                    },
                    &cluster,
                ),
                &mut FifoAnySlot,
            );
            reduce_slots_stats.absorb(&red_run.slots);
            red_run.makespan_s
        } else {
            0.0
        };

        phases.push(JobPhases {
            map_wall: map_run.makespan_s,
            reduce_wall,
            map_cpu_task: t.map_cpu_task,
            map_io_task: t.map_io_task,
            red_cpu_task: t.red_cpu_task,
            red_io_task: t.red_io_task,
            map_task_s: t.map_task_s,
            red_task_s: t.red_task_s,
            n_map: t.n_map,
            n_red: t.n_red,
        });
    }

    // ------------------------------------------------------------------
    // Aggregate phases across chained jobs.
    // ------------------------------------------------------------------
    let map_wall: f64 = phases.iter().map(|p| p.map_wall).sum();
    let reduce_wall: f64 = phases.iter().map(|p| p.reduce_wall).sum();
    let n_map_total: usize = phases.iter().map(|p| p.n_map).sum();
    let n_red_total: usize = phases.iter().map(|p| p.n_red).sum();

    // Others: per-job setup/cleanup (fixed protocol time) + serial master
    // bookkeeping (scales with task count and core speed).
    let others_wall = ratios.jobs.len() as f64 * (JOB_SETUP_S + JOB_CLEANUP_S)
        + cpu_seconds(
            m,
            &hadoop_avg,
            hadoop_stalls,
            f,
            MASTER_INSTR_PER_TASK * (n_map_total + n_red_total) as f64 / cfg.nodes as f64,
        );

    // ------------------------------------------------------------------
    // Optional map-phase acceleration (§3.4): only the hotspot map (the
    // chained job with the largest map wall) is offloaded — the paper
    // profiles for the hotspot region and assumes *those* map tasks move
    // to the FPGA; auxiliary jobs' maps stay on the CPU.
    // ------------------------------------------------------------------
    let mut breakdown = PhaseBreakdown::new(map_wall, reduce_wall, others_wall);
    if let Some(acc) = &cfg.accel {
        let hotspot = phases.iter().map(|p| p.map_wall).fold(0.0f64, f64::max);
        let rest_map = map_wall - hotspot;
        let primary = ratios.primary();
        let transfer = (cfg.data_per_node_bytes as f64
            * cfg.nodes as f64
            * (1.0 + primary.map_selectivity.min(1.5)))
            / cfg.nodes as f64
            / slots as f64;
        let hot_accel = hhsim_accel::accelerate(
            &PhaseBreakdown::new(hotspot, 0.0, 0.0),
            transfer as u64,
            acc,
        );
        breakdown = PhaseBreakdown::new(hot_accel.map_s + rest_map, reduce_wall, others_wall);
    }

    // ------------------------------------------------------------------
    // Power and energy. Phase power uses the dominant (first) job's task
    // mix; utilization reflects how many slots the waves actually fill.
    // ------------------------------------------------------------------
    let op = m.operating_point(f);
    let dominant = &phases[0];
    let map_util = (n_map_total as f64 / total_slots as f64).min(1.0);
    let active_map = ((slots as f64 * map_util).round() as usize).max(1);
    let io_frac_map = (dominant.map_io_task / dominant.map_task_s.max(1e-9)).clamp(0.0, 1.0);
    let p_map = m.power.node_power(
        op,
        active_map,
        m.num_cores,
        map_prof.activity,
        mem_intensity(&map_prof),
        io_frac_map,
    );

    let red_util = if n_red_total > 0 {
        (n_red_total as f64 / total_slots as f64).min(1.0)
    } else {
        0.0
    };
    let active_red =
        ((slots as f64 * red_util).round() as usize).max(if n_red_total > 0 { 1 } else { 0 });
    let red_task_s: f64 = phases.iter().map(|p| p.red_task_s).sum();
    let red_io_task: f64 = phases.iter().map(|p| p.red_io_task).sum();
    let io_frac_red = if red_task_s > 0.0 {
        (red_io_task / red_task_s).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let p_red = m.power.node_power(
        op,
        active_red,
        m.num_cores,
        red_prof.activity,
        mem_intensity(&red_prof),
        io_frac_red,
    );
    let p_oth = m.power.node_power(op, 1, m.num_cores, 0.35, 0.2, 0.1);

    let mut trace = PowerTrace::new();
    trace.push(breakdown.map_s, p_map.total());
    trace.push(breakdown.reduce_s, p_red.total());
    trace.push(breakdown.others_s, p_oth.total());
    let reading = PowerMeter::default().measure(&trace);
    let idle = m.power.node_idle_w;

    let map_cost_detail = PhaseCost {
        seconds: breakdown.map_s,
        dynamic_watts: p_map.dynamic(),
        cpu_seconds_per_task: dominant.map_cpu_task,
        io_seconds_per_task: dominant.map_io_task,
    };
    let red_cost_detail = PhaseCost {
        seconds: breakdown.reduce_s,
        dynamic_watts: p_red.dynamic(),
        cpu_seconds_per_task: phases.iter().map(|p| p.red_cpu_task).sum(),
        io_seconds_per_task: red_io_task,
    };
    let oth_cost_detail = PhaseCost {
        seconds: breakdown.others_s,
        dynamic_watts: p_oth.dynamic(),
        cpu_seconds_per_task: 0.0,
        io_seconds_per_task: 0.0,
    };

    let energy_j = reading.dynamic_energy_j(idle) * cfg.nodes as f64;
    let exact_energy_j =
        (trace.exact_energy_j() - idle * trace.duration_s()).max(0.0) * cfg.nodes as f64;
    let area = slots as f64 * m.area_mm2;
    let cost = CostMetrics::new(energy_j, breakdown.total(), area);
    let map_cost = CostMetrics::new(
        map_cost_detail.energy_j(cfg.nodes),
        breakdown.map_s.max(1e-9),
        area,
    );
    let reduce_cost = CostMetrics::new(
        red_cost_detail.energy_j(cfg.nodes),
        breakdown.reduce_s.max(1e-9),
        area,
    );

    Measurement {
        app: cfg.app,
        machine_name: m.name.clone(),
        breakdown,
        map: map_cost_detail,
        reduce: red_cost_detail,
        others: oth_cost_detail,
        map_slots: map_slots_stats,
        reduce_slots: reduce_slots_stats,
        faults: FaultStats::default(),
        map_locality_tiers: [0, 0, 0],
        reading,
        energy_j,
        exact_energy_j,
        cost,
        map_cost,
        reduce_cost,
        map_ipc: 1.0 / m.cpi_with_stalls(&map_prof, f, map_stalls.0, map_stalls.1),
    }
}

/// DRAM-intensity knob for the power model, derived from the profile's
/// non-resident access fractions.
fn mem_intensity(p: &ComputeProfile) -> f64 {
    ((1.0 - p.mem.hot_fraction) * 1.8 + 0.15).clamp(0.0, 1.0)
}

/// The placement policy object a [`PlacementKind`] names for `app`.
fn build_placement(kind: PlacementKind, app: AppId) -> Box<dyn Placement> {
    match kind {
        PlacementKind::FifoAny => Box::new(FifoAnySlot),
        PlacementKind::PaperClass(goal) => {
            Box::new(KindPreferring::for_class(job_class(app), goal))
        }
        PlacementKind::PreferBig => Box::new(KindPreferring {
            preferred: CoreKind::Big,
        }),
        PlacementKind::PreferLittle => Box::new(KindPreferring {
            preferred: CoreKind::Little,
        }),
    }
}

/// Streams one phase run's per-node power into the node meters, pricing
/// the engine's time-resolved slot occupancy through each node's power
/// model, and returns the phase's exact dynamic energy over all nodes.
///
/// Each utilization piece is priced once and integrated exactly —
/// O(transitions) per node, with the 1 Hz metered view resolving inside
/// the [`StreamingMeter`] instead of a per-node `PowerTrace` + full
/// re-sampling pass.
fn charge_phase(
    cluster: &Cluster,
    run: &PhaseRun,
    machines: &[&MachineModel],
    f: Frequency,
    prof: &ComputeProfile,
    io_frac: &[f64],
    meters: &mut [StreamingMeter],
) -> f64 {
    let mut ph = ClusterTimeline::new(cluster);
    ph.extend("phase", 0.0, run);
    // One pass over the span columns for every node's step function —
    // the per-node `active_steps(i)` loop was O(nodes × spans).
    let mut steps = ph.active_steps_all();
    let mut dynamic_j = 0.0;
    for (i, (m, meter)) in machines.iter().zip(meters.iter_mut()).enumerate() {
        let op = m.operating_point(f);
        let node_steps = steps.get_mut(i).map(std::mem::take).unwrap_or_default();
        let util = UtilizationTimeline::new(node_steps, run.makespan_s);
        let node_io = io_frac.get(i).copied().unwrap_or(0.0);
        // -0.0 seeds the same fold as `PowerTrace::exact_energy_j`, so
        // this phase's exact energy is bit-identical to the retired
        // per-node trace's.
        let mut node_j = -0.0;
        for (dur, active) in util.pieces() {
            // A node with no running task draws only its idle floor —
            // DRAM/disk activity follows the tasks, not the cluster.
            let (activity, mem, io) = if active > 0 {
                (prof.activity, mem_intensity(prof), node_io)
            } else {
                (0.0, 0.0, 0.0)
            };
            let w = m
                .power
                .node_power(op, active, m.num_cores, activity, mem, io)
                .total();
            if dur > 0.0 {
                node_j += dur * w;
            }
            meter.push(dur, w);
        }
        dynamic_j += node_j - m.power.node_idle_w * run.makespan_s;
    }
    dynamic_j
}

/// Simulates `cfg` on the event-driven cluster engine and returns the
/// measurement together with the per-task trace timeline.
///
/// With a [`NodeMix`] this is the §3.5 heterogeneous study: Xeon and Atom
/// preset nodes run side by side at `cfg.frequency`, tasks are placed by
/// the mix's policy, each task's duration comes from the node it lands
/// on, and every node's power is metered over its *time-resolved* slot
/// occupancy (`cfg.machine`/`cfg.nodes` are ignored). Without a mix the
/// same machinery runs the homogeneous cluster of `cfg.machine` — useful
/// for exporting a trace of a baseline run. Note the homogeneous
/// *measurement* of record stays [`simulate`], whose phase-average meter
/// reproduces the paper's published tables bit-for-bit.
///
/// # Panics
///
/// Panics on a degenerate configuration (no nodes, no data) or if an
/// accelerator is configured (offload is not modeled per-node).
pub fn simulate_cluster(cfg: &SimConfig) -> (Measurement, ClusterTimeline) {
    simulate_cluster_with(cfg, SimCache::global())
}

/// [`simulate_cluster`] against an explicit cache.
///
/// # Panics
///
/// Additionally panics if fault injection makes the run unrecoverable
/// (a task exhausting `max_attempts`, or crashes leaving no usable
/// slots); use [`try_simulate_cluster_with`] to handle that as an error.
pub fn simulate_cluster_with(cfg: &SimConfig, cache: &SimCache) -> (Measurement, ClusterTimeline) {
    match try_simulate_cluster_with(cfg, cache) {
        Ok(r) => r,
        // hhsim: allow(panic-in-engine): infallible facade for legacy callers; fault-aware callers use try_simulate_cluster_with
        Err(e) => panic!("cluster run failed under fault injection: {e}"),
    }
}

/// [`try_simulate_cluster_with`] against the process-wide cache.
///
/// # Errors
///
/// Returns the [`PhaseError`] of the first phase fault injection makes
/// unrecoverable.
pub fn try_simulate_cluster(cfg: &SimConfig) -> Result<(Measurement, ClusterTimeline), PhaseError> {
    try_simulate_cluster_with(cfg, SimCache::global())
}

/// Fallible [`simulate_cluster`]: with an active [`FaultConfig`] the run
/// injects the plan's task failures, node crashes and stragglers, and
/// recovers per the configured policy; an unrecoverable run (a task out
/// of attempts, or no usable slots left) surfaces as `Err` — Hadoop's
/// "job failed" — instead of a panic.
///
/// # Errors
///
/// Returns the [`PhaseError`] of the first unrecoverable phase.
///
/// # Panics
///
/// Panics on a degenerate configuration (no nodes, no data) or if an
/// accelerator is configured (offload is not modeled per-node).
pub fn try_simulate_cluster_with(
    cfg: &SimConfig,
    cache: &SimCache,
) -> Result<(Measurement, ClusterTimeline), PhaseError> {
    let prep = ClusterPrep::new(cfg, cache);
    prep.run_seeded(cfg.active_faults().as_ref(), cache)
}

/// Seed-independent preparation of one cluster-engine run: node roster,
/// placement, per-job task pricing, launch overheads, protocol time —
/// everything [`ClusterPrep::run_seeded`] shares across fault
/// replications. The replication engine builds this once per
/// [`SimConfig`] and fans seeds out over it behind an `Arc`, instead of
/// re-deriving the whole stack per seed.
pub(crate) struct ClusterPrep {
    app: AppId,
    f: Frequency,
    big_m: MachineModel,
    little_m: MachineModel,
    n_big: usize,
    n_little: usize,
    big_slots: usize,
    little_slots: usize,
    placement_kind: PlacementKind,
    /// Resolved placement behavior code for phase memo keys.
    placement_code: u8,
    cluster: Cluster,
    big_overhead: f64,
    little_overhead: f64,
    map_prof: ComputeProfile,
    red_prof: ComputeProfile,
    /// Per chained job: (big-node timing, little-node timing).
    jobs: Vec<(JobTiming, JobTiming)>,
    /// Active rack fabric, when the run models the network topology.
    topology: Option<Topology>,
    /// Per chained job: the map phase's block layout (HDFS-default
    /// placement) and per-tier read penalties. `None` entries (always,
    /// without an active topology) leave the legacy node-local path.
    map_locality: Vec<Option<PhaseLocality>>,
    /// Per chained job: per-reduce-task contended-shuffle penalty
    /// seconds beyond the flat model's uncontended transfer (empty
    /// without an active topology).
    red_extra: Vec<Vec<f64>>,
    multi_job: bool,
    others_wall: f64,
    /// Per node: (total W, dynamic W) during the others window.
    oth_power: Vec<(f64, f64)>,
    machine_name: String,
    area: f64,
    map_ipc: f64,
    dom: JobTiming,
}

impl ClusterPrep {
    /// Derives everything about `cfg`'s cluster run that does not depend
    /// on the fault seed.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (no nodes, no data) or if an
    /// accelerator is configured (offload is not modeled per-node).
    pub(crate) fn new(cfg: &SimConfig, cache: &SimCache) -> Self {
        assert!(cfg.data_per_node_bytes > 0, "need input data");
        assert!(
            cfg.accel.is_none(),
            "accelerator offload is not modeled on the cluster-engine path"
        );
        let f = cfg.frequency;
        let ratios = cache.ratios(cfg.app);
        let disk = DiskModel::sata_7200();
        let block = cfg.block_size.bytes();

        // Resolve the node roster: machine model per kind plus counts.
        let (big_m, little_m, n_big, n_little, placement_kind) = match cfg.node_mix {
            Some(mix) => {
                assert!(mix.big + mix.little > 0, "need at least one node");
                (
                    presets::xeon_e5_2420(),
                    presets::atom_c2758(),
                    mix.big,
                    mix.little,
                    mix.placement,
                )
            }
            None => {
                assert!(cfg.nodes > 0, "need at least one node");
                match cfg.machine.core.kind {
                    CoreKind::Big => (
                        cfg.machine.clone(),
                        presets::atom_c2758(),
                        cfg.nodes,
                        0,
                        PlacementKind::FifoAny,
                    ),
                    CoreKind::Little => (
                        presets::xeon_e5_2420(),
                        cfg.machine.clone(),
                        0,
                        cfg.nodes,
                        PlacementKind::FifoAny,
                    ),
                }
            }
        };
        let big_slots = cfg.mappers_per_node.unwrap_or(big_m.num_cores).max(1);
        let little_slots = cfg.mappers_per_node.unwrap_or(little_m.num_cores).max(1);
        let cluster = Cluster::mixed(n_big, big_slots, n_little, little_slots);
        let nodes_total = n_big + n_little;
        let total_slots = cluster.total_slots();

        let map_prof = cfg.app.map_profile();
        let red_prof = cfg.app.reduce_profile();
        let hadoop_avg = ComputeProfile::hadoop_average();

        // Per-kind task-launch overhead.
        let overhead_of = |m: &MachineModel| {
            let factor = match m.core.kind {
                CoreKind::Big => 1.0,
                CoreKind::Little => 1.8,
            };
            cpu_seconds(
                m,
                &hadoop_avg,
                cache.stall_split(m, &hadoop_avg),
                f,
                TASK_OVERHEAD_INSTR,
            ) * factor
        };
        let big_overhead = overhead_of(&big_m);
        let little_overhead = overhead_of(&little_m);

        let shape_of = |slots: usize| ClusterShape {
            slots,
            total_slots,
            nodes: nodes_total,
        };

        let mut jobs: Vec<(JobTiming, JobTiming)> = Vec::with_capacity(ratios.jobs.len());
        let mut n_map_total = 0usize;
        let mut n_red_total = 0usize;
        for job in ratios.jobs.iter() {
            let tb = job_timing(
                &big_m,
                f,
                cache,
                &disk,
                job,
                &cfg.job,
                shape_of(big_slots),
                cfg.data_per_node_bytes,
                block,
                &map_prof,
                &red_prof,
            );
            let tl = job_timing(
                &little_m,
                f,
                cache,
                &disk,
                job,
                &cfg.job,
                shape_of(little_slots),
                cfg.data_per_node_bytes,
                block,
                &map_prof,
                &red_prof,
            );
            debug_assert_eq!(tb.n_map, tl.n_map, "task counts are machine-independent");
            debug_assert_eq!(tb.n_red, tl.n_red, "task counts are machine-independent");
            n_map_total += tb.n_map;
            n_red_total += tb.n_red;
            jobs.push((tb, tl));
        }
        // Rack-fabric pricing: lay the input out with the HDFS default
        // policy, price each map task's locality tier, and price the
        // reduce shuffle on the contended fabric. All gated on an
        // *active* topology, so flat runs never see any of this.
        let topology = cfg.active_topology();
        let mut map_locality: Vec<Option<PhaseLocality>> = vec![None; jobs.len()];
        let mut red_extra: Vec<Vec<f64>> = vec![Vec::new(); jobs.len()];
        if let Some(topo) = &topology {
            // The same fabric with full bisection and one rack: the
            // baseline the contention penalty is measured against, so
            // the flat model's uncontended transfer (already inside
            // `red_task_s`) is never double-charged.
            let flat_fabric = Topology {
                racks: 1,
                oversubscription: 1.0,
                ..*topo
            };
            for (ji, ((tb, _tl), (loc_slot, extra_slot))) in jobs
                .iter()
                .zip(map_locality.iter_mut().zip(red_extra.iter_mut()))
                .enumerate()
            {
                // Each node ingests its own share of the input (block t
                // is written by node t mod N, like the paper's per-node
                // data load); the HDFS default policy then spreads the
                // replicas across racks.
                let mut policy = HdfsDefault::new(TOPOLOGY_LAYOUT_SEED ^ ji as u64);
                let replication = HDFS_REPLICATION.min(nodes_total);
                let replicas: Vec<Vec<usize>> = (0..tb.n_map)
                    .map(|t| {
                        policy
                            .place(
                                &PlacementRequest {
                                    block: BlockId(t as u64),
                                    writer: Some(NodeId(t % nodes_total)),
                                    replication,
                                    num_nodes: nodes_total,
                                },
                                topo,
                            )
                            .into_iter()
                            .map(|n| n.0)
                            .collect()
                    })
                    .collect();
                let bytes = tb.map_task_bytes.max(0.0) as u64;
                *loc_slot = Some(PhaseLocality {
                    replicas,
                    racks: topo.racks,
                    read_seconds: [
                        topo.read_seconds(bytes, LocalityTier::NodeLocal),
                        topo.read_seconds(bytes, LocalityTier::RackLocal),
                        topo.read_seconds(bytes, LocalityTier::OffRack),
                    ],
                });
                if tb.n_red > 0 {
                    let contended = shuffle::reduce_fetch_seconds(
                        topo,
                        nodes_total,
                        tb.n_red,
                        tb.red_input_bytes,
                    );
                    let baseline = shuffle::reduce_fetch_seconds(
                        &flat_fabric,
                        nodes_total,
                        tb.n_red,
                        tb.red_input_bytes,
                    );
                    *extra_slot = contended
                        .iter()
                        .zip(&baseline)
                        .map(|(c, b)| (c - b).max(0.0))
                        .collect();
                }
            }
        }

        let (dom_big, dom_little) = *jobs.first().expect("at least one job");
        let dom = if n_big > 0 { dom_big } else { dom_little };

        let machine_of = |kind: CoreKind| -> &MachineModel {
            match kind {
                CoreKind::Big => &big_m,
                CoreKind::Little => &little_m,
            }
        };

        // Others: setup/cleanup protocol time plus serial master
        // bookkeeping, run by the first node's machine.
        let master = cluster
            .nodes
            .first()
            .map(|n| machine_of(n.kind))
            .unwrap_or(&big_m);
        let others_wall = ratios.jobs.len() as f64 * (JOB_SETUP_S + JOB_CLEANUP_S)
            + cpu_seconds(
                master,
                &hadoop_avg,
                cache.stall_split(master, &hadoop_avg),
                f,
                MASTER_INSTR_PER_TASK * (n_map_total + n_red_total) as f64 / nodes_total as f64,
            );
        let oth_power: Vec<(f64, f64)> = cluster
            .nodes
            .iter()
            .map(|n| {
                let m = machine_of(n.kind);
                let op = m.operating_point(f);
                let p_oth = m.power.node_power(op, 1, m.num_cores, 0.35, 0.2, 0.1);
                (p_oth.total(), p_oth.dynamic())
            })
            .collect();

        // Engaged area: average per-node slots × chip area, comparable
        // to the homogeneous path's `slots * area`.
        let area = cluster
            .nodes
            .iter()
            .map(|n| n.slots as f64 * machine_of(n.kind).area_mm2)
            .sum::<f64>()
            / nodes_total as f64;

        let machine_name = match cfg.node_mix {
            Some(_) => format!("Mixed({n_big}xXeon+{n_little}xAtom)"),
            None => cfg.machine.name.clone(),
        };
        let ipc_m = if n_big > 0 { &big_m } else { &little_m };
        let ipc_stalls = cache.stall_split(ipc_m, &map_prof);
        let map_ipc = 1.0 / ipc_m.cpi_with_stalls(&map_prof, f, ipc_stalls.0, ipc_stalls.1);

        let placement_code = match placement_kind {
            PlacementKind::FifoAny => 0,
            PlacementKind::PreferBig => 1,
            PlacementKind::PreferLittle => 2,
            PlacementKind::PaperClass(goal) => {
                match KindPreferring::for_class(job_class(cfg.app), goal).preferred {
                    CoreKind::Big => 1,
                    CoreKind::Little => 2,
                }
            }
        };

        ClusterPrep {
            app: cfg.app,
            f,
            big_m,
            little_m,
            n_big,
            n_little,
            big_slots,
            little_slots,
            placement_kind,
            placement_code,
            cluster,
            big_overhead,
            little_overhead,
            map_prof,
            red_prof,
            jobs,
            topology,
            map_locality,
            red_extra,
            multi_job: ratios.jobs.len() > 1,
            others_wall,
            oth_power,
            machine_name,
            area,
            map_ipc,
            dom,
        }
    }

    /// The phase memo key of one phase under this prep's roster.
    fn phase_key(
        &self,
        tasks: usize,
        big_task_s: f64,
        little_task_s: f64,
        faults: Option<PhaseFaultKey>,
        net: Option<PhaseNetKey>,
        fetch: Option<u64>,
    ) -> PhaseKey {
        PhaseKey {
            placement: self.placement_code,
            roster: (self.n_big, self.big_slots, self.n_little, self.little_slots),
            tasks,
            timing: [
                big_task_s.to_bits(),
                self.big_overhead.to_bits(),
                little_task_s.to_bits(),
                self.little_overhead.to_bits(),
            ],
            faults,
            net,
            fetch,
        }
    }

    /// Runs the prepared cluster under one fault configuration (or none)
    /// and assembles the measurement. Every fault-seed-dependent piece
    /// of the simulation lives here; the phase engine runs route through
    /// the cache's phase memo, so sweeps and replications that share a
    /// phase's exact inputs reuse its `PhaseRun`.
    ///
    /// # Errors
    ///
    /// Returns the [`PhaseError`] of the first unrecoverable phase.
    pub(crate) fn run_seeded(
        &self,
        faults: Option<&FaultConfig>,
        cache: &SimCache,
    ) -> Result<(Measurement, ClusterTimeline), PhaseError> {
        let f = self.f;
        let cluster = &self.cluster;
        let nodes_total = self.n_big + self.n_little;
        let machines: Vec<&MachineModel> = cluster
            .nodes
            .iter()
            .map(|n| match n.kind {
                CoreKind::Big => &self.big_m,
                CoreKind::Little => &self.little_m,
            })
            .collect();

        // Node fate (crash times, stragglers) is sampled once per run,
        // so a node that dies in one phase stays dead for every later
        // phase.
        let node_faults = faults.map(|fc| NodeFaults::sample(fc, nodes_total));
        let mut fault_stats = FaultStats::default();
        let mut phase_idx: u64 = 0;

        let mut timeline = ClusterTimeline::new(cluster);
        let mut meters: Vec<StreamingMeter> = vec![StreamingMeter::new(); nodes_total];
        let mut map_slots_stats = SlotStats::default();
        let mut reduce_slots_stats = SlotStats::default();
        let mut map_wall = 0.0;
        let mut reduce_wall = 0.0;
        let mut map_dyn_j = 0.0;
        let mut red_dyn_j = 0.0;
        let mut offset = 0.0;
        let mut locality_tiers = [0u64; 3];

        for (ji, &(tb, tl)) in self.jobs.iter().enumerate() {
            let io_frac = |task_s: f64, io_s: f64| {
                if task_s > 0.0 {
                    (io_s / task_s).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            };
            let per_node_io = |big: f64, little: f64| -> Vec<f64> {
                cluster
                    .nodes
                    .iter()
                    .map(|n| match n.kind {
                        CoreKind::Big => big,
                        CoreKind::Little => little,
                    })
                    .collect()
            };

            // Map phase.
            let label = |base: &str| {
                if self.multi_job {
                    format!("{base}{ji}")
                } else {
                    base.to_string()
                }
            };
            let mut placement = build_placement(self.placement_kind, self.app);
            let map_locality = self.map_locality.get(ji).and_then(Option::as_ref);
            let mut map_load = PhaseLoad::by_kind(
                tb.n_map,
                NodeTiming {
                    task_seconds: tb.map_task_s,
                    overhead_seconds: self.big_overhead,
                },
                NodeTiming {
                    task_seconds: tl.map_task_s,
                    overhead_seconds: self.little_overhead,
                },
                cluster,
            );
            if let Some(loc) = map_locality {
                map_load = map_load.with_locality(loc.clone());
            }
            let map_faults = faults
                .zip(node_faults.as_ref())
                .map(|(fc, nf)| nf.phase(fc, phase_idx, fc.phase_rate(false), offset));
            let map_key = self.phase_key(
                tb.n_map,
                tb.map_task_s,
                tl.map_task_s,
                faults.map(|fc| PhaseFaultKey::new(fc, phase_idx, fc.phase_rate(false), offset)),
                self.topology
                    .as_ref()
                    .zip(map_locality)
                    .map(|(t, l)| PhaseNetKey::for_map(t, l)),
                None,
            );
            phase_idx += 1;
            let map_run = cache.phase_run(map_key, || {
                run_phase_faulty(cluster, &map_load, placement.as_mut(), map_faults.as_ref())
            })?;
            map_slots_stats.absorb(&map_run.slots);
            fault_stats.absorb(&map_run.faults);
            for s in &map_run.spans {
                if let Some(c) = locality_tiers.get_mut(s.tier.idx()) {
                    *c += 1;
                }
            }
            timeline.extend(&label("map"), offset, &map_run);
            offset += map_run.makespan_s;
            map_wall += map_run.makespan_s;
            map_dyn_j += charge_phase(
                cluster,
                &map_run,
                &machines,
                f,
                &self.map_prof,
                &per_node_io(
                    io_frac(tb.map_task_s, tb.map_io_task),
                    io_frac(tl.map_task_s, tl.map_io_task),
                ),
                &mut meters,
            );

            // Reduce phase.
            if tb.n_red > 0 {
                // Hadoop fetch-failure semantics need both faults (a
                // holder can die) and an active topology (replicas and
                // locality tiers exist); either alone keeps the legacy
                // reduce path bitwise intact.
                let fetch_plan =
                    faults
                        .and(map_locality)
                        .zip(self.topology.as_ref())
                        .map(|(loc, topo)| FetchPlan {
                            holders: map_run.spans.iter().map(|s| s.node).collect(),
                            map_replicas: loc.replicas.clone(),
                            topology: *topo,
                            read_seconds: loc.read_seconds,
                            map_timing: map_load.timing.clone(),
                        });
                let red_extra = self.red_extra.get(ji).filter(|e| !e.is_empty());
                let mut red_load = PhaseLoad::by_kind(
                    tb.n_red,
                    NodeTiming {
                        task_seconds: tb.red_task_s,
                        overhead_seconds: self.big_overhead,
                    },
                    NodeTiming {
                        task_seconds: tl.red_task_s,
                        overhead_seconds: self.little_overhead,
                    },
                    cluster,
                );
                if let Some(extra) = red_extra {
                    red_load = red_load.with_extra_seconds(extra.clone());
                }
                let red_faults = faults
                    .zip(node_faults.as_ref())
                    .map(|(fc, nf)| nf.phase(fc, phase_idx, fc.phase_rate(true), offset));
                let red_key = self.phase_key(
                    tb.n_red,
                    tb.red_task_s,
                    tl.red_task_s,
                    faults.map(|fc| PhaseFaultKey::new(fc, phase_idx, fc.phase_rate(true), offset)),
                    self.topology
                        .as_ref()
                        .zip(red_extra)
                        .map(|(t, e)| PhaseNetKey::for_extras(t, e)),
                    fetch_plan.as_ref().map(fetch_digest),
                );
                phase_idx += 1;
                let red_run = cache.phase_run(red_key, || {
                    run_phase_faulty_fetch(
                        cluster,
                        &red_load,
                        placement.as_mut(),
                        red_faults.as_ref(),
                        fetch_plan.as_ref(),
                    )
                })?;
                reduce_slots_stats.absorb(&red_run.slots);
                fault_stats.absorb(&red_run.faults);
                timeline.extend(&label("reduce"), offset, &red_run);
                offset += red_run.makespan_s;
                reduce_wall += red_run.makespan_s;
                red_dyn_j += charge_phase(
                    cluster,
                    &red_run,
                    &machines,
                    f,
                    &self.red_prof,
                    &per_node_io(
                        io_frac(tb.red_task_s, tb.red_io_task),
                        io_frac(tl.red_task_s, tl.red_io_task),
                    ),
                    &mut meters,
                );
            }
        }

        let mut oth_dyn_w_sum = 0.0;
        for (meter, &(total_w, dyn_w)) in meters.iter_mut().zip(&self.oth_power) {
            meter.push(self.others_wall, total_w);
            oth_dyn_w_sum += dyn_w;
        }

        // Finish every node's streamed 1 Hz view (bit-identical to the
        // retired per-node trace metering) and exact integral.
        let mut energy_j = 0.0;
        let mut exact_energy_j = 0.0;
        let mut reading = MeterReading {
            samples: 0,
            average_watts: 0.0,
            duration_s: 0.0,
        };
        for (i, (meter, m)) in meters.into_iter().zip(&machines).enumerate() {
            let er = meter.finish();
            energy_j += er.meter.dynamic_energy_j(m.power.node_idle_w);
            exact_energy_j += er.exact_dynamic_energy_j(m.power.node_idle_w);
            if i == 0 {
                reading = er.meter;
            }
        }

        let breakdown = PhaseBreakdown::new(map_wall, reduce_wall, self.others_wall);
        let dom = self.dom;

        let map_cost_detail = PhaseCost {
            seconds: breakdown.map_s,
            dynamic_watts: if breakdown.map_s > 0.0 {
                map_dyn_j / breakdown.map_s / nodes_total as f64
            } else {
                0.0
            },
            cpu_seconds_per_task: dom.map_cpu_task,
            io_seconds_per_task: dom.map_io_task,
        };
        let red_cost_detail = PhaseCost {
            seconds: breakdown.reduce_s,
            dynamic_watts: if breakdown.reduce_s > 0.0 {
                red_dyn_j / breakdown.reduce_s / nodes_total as f64
            } else {
                0.0
            },
            cpu_seconds_per_task: dom.red_cpu_task,
            io_seconds_per_task: dom.red_io_task,
        };
        let oth_cost_detail = PhaseCost {
            seconds: breakdown.others_s,
            dynamic_watts: oth_dyn_w_sum / nodes_total as f64,
            cpu_seconds_per_task: 0.0,
            io_seconds_per_task: 0.0,
        };

        let cost = CostMetrics::new(energy_j, breakdown.total(), self.area);
        let map_cost = CostMetrics::new(map_dyn_j, breakdown.map_s.max(1e-9), self.area);
        let reduce_cost = CostMetrics::new(red_dyn_j, breakdown.reduce_s.max(1e-9), self.area);

        let measurement = Measurement {
            app: self.app,
            machine_name: self.machine_name.clone(),
            breakdown,
            map: map_cost_detail,
            reduce: red_cost_detail,
            others: oth_cost_detail,
            map_slots: map_slots_stats,
            reduce_slots: reduce_slots_stats,
            faults: fault_stats,
            map_locality_tiers: locality_tiers,
            reading,
            energy_j,
            exact_energy_j,
            cost,
            map_cost,
            reduce_cost,
            map_ipc: self.map_ipc,
        };
        Ok((measurement, timeline))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhsim_arch::presets;

    fn base(app: AppId, m: MachineModel) -> SimConfig {
        SimConfig::new(app, m)
    }

    #[test]
    fn xeon_is_faster_everywhere() {
        for app in AppId::ALL {
            let x = simulate(&base(app, presets::xeon_e5_2420()));
            let a = simulate(&base(app, presets::atom_c2758()));
            assert!(
                x.breakdown.total() < a.breakdown.total(),
                "{app}: xeon {} vs atom {}",
                x.breakdown.total(),
                a.breakdown.total()
            );
        }
    }

    #[test]
    fn atom_draws_much_less_power() {
        for app in AppId::ALL {
            let x = simulate(&base(app, presets::xeon_e5_2420()));
            let a = simulate(&base(app, presets::atom_c2758()));
            assert!(
                x.map.dynamic_watts > 3.0 * a.map.dynamic_watts,
                "{app}: {} vs {}",
                x.map.dynamic_watts,
                a.map.dynamic_watts
            );
        }
    }

    #[test]
    fn frequency_helps_performance() {
        for m in [presets::xeon_e5_2420(), presets::atom_c2758()] {
            let lo = simulate(&base(AppId::WordCount, m.clone()).frequency(Frequency::GHZ_1_2));
            let hi = simulate(&base(AppId::WordCount, m).frequency(Frequency::GHZ_1_8));
            assert!(hi.breakdown.total() < lo.breakdown.total());
        }
    }

    #[test]
    fn block_size_has_an_interior_optimum() {
        // §3.1.1: 32 MB pays task overhead, 512 MB pays spills and lost
        // parallelism; the optimum sits in between.
        let t = |b: BlockSize| {
            simulate(&base(AppId::WordCount, presets::xeon_e5_2420()).block_size(b))
                .breakdown
                .total()
        };
        let t32 = t(BlockSize::MB_32);
        let t128 = t(BlockSize::MB_128);
        let t512 = t(BlockSize::MB_512);
        assert!(
            t32 > t128,
            "tiny blocks pay task overhead ({t32} vs {t128})"
        );
        assert!(
            t512 > t128,
            "huge blocks pay spills/waves ({t512} vs {t128})"
        );
    }

    #[test]
    fn execution_time_scales_with_data() {
        // §3.3: time grows with data, and grows faster on the little core.
        let grow = |m: MachineModel| {
            let one = simulate(&base(AppId::Grep, m.clone()).data_per_node(1 << 30));
            let twenty = simulate(&base(AppId::Grep, m).data_per_node(20 << 30));
            twenty.breakdown.total() / one.breakdown.total()
        };
        let gx = grow(presets::xeon_e5_2420());
        let ga = grow(presets::atom_c2758());
        assert!(gx > 2.5, "20x data must be much slower on Xeon, got {gx}");
        assert!(ga > gx, "Atom must degrade faster ({ga} vs {gx})");
    }

    #[test]
    fn accelerator_shrinks_map_only() {
        let plain = simulate(&base(AppId::WordCount, presets::atom_c2758()));
        let acc = simulate(
            &base(AppId::WordCount, presets::atom_c2758()).accelerator(AccelConfig::fpga(50.0)),
        );
        assert!(acc.breakdown.map_s < plain.breakdown.map_s);
        assert!((acc.breakdown.reduce_s - plain.breakdown.reduce_s).abs() < 1e-9);
    }

    #[test]
    fn more_mappers_speed_up_compute_bound_apps() {
        let m2 = simulate(&base(AppId::NaiveBayes, presets::atom_c2758()).mappers(2));
        let m8 = simulate(&base(AppId::NaiveBayes, presets::atom_c2758()).mappers(8));
        assert!(m8.breakdown.total() < m2.breakdown.total());
        // But power grows with cores.
        assert!(m8.map.dynamic_watts > m2.map.dynamic_watts);
    }

    #[test]
    fn sort_has_no_reduce_time() {
        let st = simulate(&base(AppId::Sort, presets::xeon_e5_2420()));
        assert_eq!(st.breakdown.reduce_s, 0.0);
        assert!(st.breakdown.map_s > 0.0);
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = simulate(&base(AppId::TeraSort, presets::atom_c2758()));
        let b = simulate(&base(AppId::TeraSort, presets::atom_c2758()));
        assert_eq!(a, b);
    }

    #[test]
    fn slot_stats_populated_by_engine() {
        let m = simulate(
            &base(AppId::WordCount, presets::xeon_e5_2420())
                .block_size(hhsim_hdfs::BlockSize::MB_32),
        );
        assert_eq!(m.map_slots.capacity, 36, "3 nodes x 12 cores");
        assert!(m.map_slots.peak_in_use > 0);
        assert!(
            m.map_slots.tasks_queued > 0,
            "32 MB blocks make far more tasks than slots"
        );
        assert!(m.map_slots.total_wait_s > 0.0);
    }

    #[test]
    fn mixed_cluster_runs_and_traces() {
        let cfg = base(AppId::WordCount, presets::xeon_e5_2420()).mix(NodeMix {
            big: 1,
            little: 2,
            placement: PlacementKind::PaperClass(MetricKind::Edp),
        });
        let (m, tl) = simulate_cluster(&cfg);
        assert_eq!(m.machine_name, "Mixed(1xXeon+2xAtom)");
        assert_eq!(tl.nodes.len(), 3);
        assert!(!tl.is_empty());
        assert!(m.breakdown.total() > 0.0);
        assert!(m.energy_j > 0.0);
        // simulate() routes node_mix configs through the same path.
        assert_eq!(simulate(&cfg), m);
    }

    #[test]
    fn mixed_cluster_is_deterministic() {
        let cfg = base(AppId::Sort, presets::xeon_e5_2420()).mix(NodeMix {
            big: 2,
            little: 1,
            placement: PlacementKind::PaperClass(MetricKind::Edp),
        });
        let (m1, t1) = simulate_cluster(&cfg);
        let (m2, t2) = simulate_cluster(&cfg);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
        assert_eq!(t1.to_chrome_trace_json(), t2.to_chrome_trace_json());
    }

    #[test]
    fn none_faults_config_is_bitwise_identical_to_no_faults() {
        // A present-but-inactive FaultConfig must not perturb a single bit
        // of either the analytic path or the cluster engine.
        let plain = base(AppId::WordCount, presets::xeon_e5_2420());
        let with_none = plain.clone().faults(FaultConfig::none());
        assert_eq!(simulate(&plain), simulate(&with_none));

        let mixed = base(AppId::Sort, presets::xeon_e5_2420()).mix(NodeMix {
            big: 1,
            little: 2,
            placement: PlacementKind::PaperClass(MetricKind::Edp),
        });
        let mixed_none = mixed.clone().faults(FaultConfig::none());
        let (m1, t1) = simulate_cluster(&mixed);
        let (m2, t2) = simulate_cluster(&mixed_none);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
        assert_eq!(t1.to_chrome_trace_json(), t2.to_chrome_trace_json());
    }

    #[test]
    fn flat_topology_config_is_bitwise_identical_to_no_topology() {
        // A present-but-inactive Topology must not perturb a single bit
        // of either the analytic path or the cluster engine.
        let plain = base(AppId::WordCount, presets::xeon_e5_2420());
        let with_flat = plain.clone().topology(Topology::flat());
        assert_eq!(simulate(&plain), simulate(&with_flat));

        let mixed = base(AppId::Sort, presets::xeon_e5_2420()).mix(NodeMix {
            big: 1,
            little: 2,
            placement: PlacementKind::PaperClass(MetricKind::Edp),
        });
        let mixed_flat = mixed.clone().topology(Topology::flat());
        let (m1, t1) = simulate_cluster(&mixed);
        let (m2, t2) = simulate_cluster(&mixed_flat);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
        assert_eq!(t1.to_chrome_trace_json(), t2.to_chrome_trace_json());
        assert_eq!(t1.utilization_csv(), t2.utilization_csv());
    }

    #[test]
    fn active_topology_routes_through_the_cluster_engine() {
        let cfg = base(AppId::TeraSort, presets::xeon_e5_2420())
            .data_per_node(4 << 30)
            .topology(Topology::racked(3, 8.0));
        let (m, tl) = simulate_cluster(&cfg);
        // simulate() routes topology-active configs through the engine.
        assert_eq!(simulate(&cfg), m);
        // The HDFS-default layout keeps most reads node-local (first
        // replica is writer-local) but spills the rest across tiers.
        let [nl, rl, of] = m.map_locality_tiers;
        assert!(
            nl > 0,
            "writer-local replicas exist: {:?}",
            m.map_locality_tiers
        );
        assert!(
            nl + rl + of > 0 && (rl + of) < nl.max(1) * 10,
            "tier mix is sane: {:?}",
            m.map_locality_tiers
        );
        // The trace carries the locality-tier vocabulary end to end.
        let json = tl.to_chrome_trace_json();
        assert!(m.breakdown.total() > 0.0);
        let _ = json;
    }

    #[test]
    fn oversubscription_slows_reduce_and_shifts_edp() {
        // fig21's monotonicity claim at a single point: same cluster,
        // same block size, fatter oversubscription ⇒ slower reduce
        // phase and no-better EDP.
        let at = |over: f64| {
            let cfg = base(AppId::TeraSort, presets::xeon_e5_2420())
                .data_per_node(4 << 30)
                .topology(Topology::racked(3, over));
            simulate(&cfg)
        };
        let fast = at(1.0);
        let slow = at(16.0);
        assert!(
            slow.breakdown.reduce_s >= fast.breakdown.reduce_s,
            "reduce must not speed up under oversubscription: {} < {}",
            slow.breakdown.reduce_s,
            fast.breakdown.reduce_s
        );
        assert!(
            slow.breakdown.reduce_s > fast.breakdown.reduce_s * 1.01,
            "contended shuffle must actually bite: {} vs {}",
            slow.breakdown.reduce_s,
            fast.breakdown.reduce_s
        );
        assert!(
            slow.cost.edp() > fast.cost.edp(),
            "EDP reflects the slowdown"
        );
    }

    #[test]
    fn faulty_mixed_run_is_deterministic_and_counts_faults() {
        let faults = FaultConfig::none()
            .seed(42)
            .failure_rates(0.2, 0.2)
            .stragglers(0.3, 2.5);
        let cfg = base(AppId::WordCount, presets::xeon_e5_2420())
            .mix(NodeMix {
                big: 1,
                little: 2,
                placement: PlacementKind::PaperClass(MetricKind::Edp),
            })
            .faults(faults);
        let (m1, t1) = simulate_cluster(&cfg);
        let (m2, t2) = simulate_cluster(&cfg);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
        assert!(
            m1.faults.failed_attempts > 0,
            "20% failure rate must fail some attempts"
        );
        assert!(m1.faults.wasted_slot_s > 0.0);

        let clean = simulate_cluster(&cfg.clone().faults(FaultConfig::none())).0;
        assert!(
            m1.breakdown.total() > clean.breakdown.total(),
            "re-execution and stragglers must cost wall-clock time"
        );
        assert_eq!(clean.faults, FaultStats::default());
    }

    #[test]
    fn cluster_wide_crash_surfaces_a_clean_error() {
        // A sub-millisecond MTTF kills every node before the first task can
        // finish; the fallible API reports it instead of hanging or panicking.
        let cfg = base(AppId::WordCount, presets::xeon_e5_2420())
            .faults(FaultConfig::none().seed(7).node_mttf(1e-3));
        match try_simulate_cluster(&cfg) {
            Err(PhaseError::NoUsableSlots { pending }) => assert!(pending > 0),
            other => panic!("expected NoUsableSlots, got {other:?}"),
        }
    }

    #[test]
    fn homogeneous_trace_covers_cluster() {
        let cfg = base(AppId::Grep, presets::atom_c2758());
        let (m, tl) = simulate_cluster(&cfg);
        assert_eq!(tl.nodes.len(), 3);
        assert_eq!(m.machine_name, cfg.machine.name);
        // Grep chains two jobs: phase labels carry the job index.
        assert!(tl.iter().any(|s| s.phase == "map0"));
        assert!(tl.iter().any(|s| s.phase == "map1"));
    }
}
