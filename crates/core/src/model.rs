//! The node/cluster timing and energy model.
//!
//! For a given (application, machine, frequency, block size, data size,
//! core count) this module prices every component the paper discusses:
//!
//! * **compute** — instructions per byte × CPI from the trace-driven cache
//!   simulation (per phase profile, per machine, per DVFS point);
//! * **I/O path CPU** — kernel/copy/serialization instructions charged per
//!   I/O byte; this is how a wimpy core becomes CPU-bound on I/O-heavy
//!   work even though the disks are identical;
//! * **disk** — seek+bandwidth per block read, spill writes, multi-pass
//!   merges (spill counts recomputed analytically at target scale), with
//!   slot contention on the node's disk;
//! * **network** — cross-node shuffle at NIC bandwidth;
//! * **memory pressure** — when a node's working footprint outgrows its
//!   8 GB of DRAM, page-cache effectiveness collapses and I/O inflates;
//!   the big core's deeper buffering absorbs this far better (§3.3);
//! * **overlap** — the out-of-order core hides a large fraction of I/O
//!   wait behind computation (§3.1.1), the in-order core does not;
//! * **framework overhead** — per-task launch plus serial master↔slave
//!   bookkeeping (what makes 32 MB blocks slow), and per-job
//!   setup/cleanup (what makes Grep's "others" phase big).
//!
//! Wall-clock phase times come from the discrete-event wave scheduler
//! ([`crate::cluster`]); power comes from the machine's CV²f model sampled
//! by the simulated Wattsup meter with idle subtraction.

use hhsim_accel::AccelConfig;
use hhsim_arch::{ComputeProfile, Frequency, MachineModel};
use hhsim_energy::{CostMetrics, MeterReading, PowerMeter, PowerTrace};
use hhsim_hdfs::{BlockSize, DiskModel};
use hhsim_mapreduce::{JobConfig, PhaseBreakdown};
use hhsim_workloads::AppId;
use serde::{Deserialize, Serialize};

use crate::cluster::{makespan, TaskSet};
use crate::simcache::SimCache;

/// Framework instructions charged per task launch (JVM spin-up, split
/// bookkeeping, heartbeats).
const TASK_OVERHEAD_INSTR: f64 = 2.0e9;
/// Serial master-side instructions per task (job tracker bookkeeping).
const MASTER_INSTR_PER_TASK: f64 = 0.2e9;
/// Per-job setup and cleanup wall time, seconds. Dominated by the job
/// client's submission/poll protocol and fixed framework sleeps, so it is
/// machine-independent (paper: significant for Grep, which runs two jobs).
const JOB_SETUP_S: f64 = 4.5;
const JOB_CLEANUP_S: f64 = 3.2;
/// NIC bandwidth per node, bytes/s (1 GbE, the paper's era).
const NET_BYTES_PER_S: f64 = 117.0e6;
/// Replication factor charged on final output writes.
const OUTPUT_REPLICATION: f64 = 2.0;

/// One experiment point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Application under test.
    pub app: AppId,
    /// Machine model (Xeon or Atom preset, possibly modified).
    pub machine: MachineModel,
    /// DVFS operating frequency.
    pub frequency: Frequency,
    /// HDFS block size.
    pub block_size: BlockSize,
    /// Input data per node, bytes (paper: 1 GB micro / 10 GB real world,
    /// swept to 20 GB in §3.3).
    pub data_per_node_bytes: u64,
    /// Cluster size (paper: 3 nodes).
    pub nodes: usize,
    /// Map slots per node; `None` = all cores of the machine. The paper's
    /// Table 3 sets mappers = cores and sweeps 2–8.
    pub mappers_per_node: Option<usize>,
    /// Engine knobs (sort buffer, merge factor).
    pub job: JobConfig,
    /// Optional FPGA offload of the map phase (§3.4).
    pub accel: Option<AccelConfig>,
}

impl SimConfig {
    /// A paper-default configuration: 3 nodes, 1 GB/node for micro-
    /// benchmarks or 10 GB/node for real-world applications, 512 MB
    /// blocks, 1.8 GHz.
    pub fn new(app: AppId, machine: MachineModel) -> Self {
        let data = if app.is_real_world() {
            10u64 << 30
        } else {
            1u64 << 30
        };
        SimConfig {
            app,
            machine,
            frequency: Frequency::GHZ_1_8,
            block_size: BlockSize::MB_512,
            data_per_node_bytes: data,
            nodes: 3,
            mappers_per_node: None,
            job: JobConfig::default(),
            accel: None,
        }
    }

    /// Sets the DVFS point.
    pub fn frequency(mut self, f: Frequency) -> Self {
        self.frequency = f;
        self
    }

    /// Sets the HDFS block size.
    pub fn block_size(mut self, b: BlockSize) -> Self {
        self.block_size = b;
        self
    }

    /// Sets the per-node input size in bytes.
    pub fn data_per_node(mut self, bytes: u64) -> Self {
        self.data_per_node_bytes = bytes;
        self
    }

    /// Sets map slots per node (the scheduling study's M).
    pub fn mappers(mut self, m: usize) -> Self {
        self.mappers_per_node = Some(m);
        self
    }

    /// Installs a map-phase accelerator.
    pub fn accelerator(mut self, a: AccelConfig) -> Self {
        self.accel = Some(a);
        self
    }

    fn slots_per_node(&self) -> usize {
        self.mappers_per_node
            .unwrap_or(self.machine.num_cores)
            .max(1)
    }
}

/// Time and power of one phase on one node.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Wall-clock seconds of the phase.
    pub seconds: f64,
    /// Dynamic (above idle) node power during the phase, watts.
    pub dynamic_watts: f64,
    /// CPU share of one task's time (diagnostics/ablation).
    pub cpu_seconds_per_task: f64,
    /// Raw (pre-overlap) disk+network share of one task's time.
    pub io_seconds_per_task: f64,
}

impl PhaseCost {
    /// Dynamic energy of the phase across `nodes` nodes, joules.
    pub fn energy_j(&self, nodes: usize) -> f64 {
        self.seconds * self.dynamic_watts * nodes as f64
    }
}

/// Everything measured for one experiment point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Configuration echo (app/machine identifiers for reports).
    pub app: AppId,
    /// Machine name.
    pub machine_name: String,
    /// Wall-clock phase breakdown.
    pub breakdown: PhaseBreakdown,
    /// Map phase detail.
    pub map: PhaseCost,
    /// Reduce phase detail.
    pub reduce: PhaseCost,
    /// Others (setup/cleanup/master) detail.
    pub others: PhaseCost,
    /// Simulated Wattsup reading over the whole run (one node).
    pub reading: MeterReading,
    /// Total dynamic energy over all nodes, joules.
    pub energy_j: f64,
    /// Whole-application cost metrics (energy, delay, engaged area).
    pub cost: CostMetrics,
    /// Map-phase-only cost metrics.
    pub map_cost: CostMetrics,
    /// Reduce-phase-only cost metrics.
    pub reduce_cost: CostMetrics,
    /// IPC the core model sustains on this app's map profile (Fig. 1).
    pub map_ipc: f64,
}

/// Memory-pressure multiplier on I/O time: footprint beyond DRAM divides
/// the page cache's hit rate. The big core's deeper queues and smarter
/// prefetch absorb pressure far better (§3.3: Atom's execution time grows
/// much faster with data size).
fn memory_pressure(machine: &MachineModel, footprint_bytes: f64) -> f64 {
    let mem = machine.memory_gb * (1u64 << 30) as f64;
    let over = (footprint_bytes / mem - 0.35).max(0.0);
    let sensitivity = match machine.core.kind {
        hhsim_arch::CoreKind::Big => 0.08,
        hhsim_arch::CoreKind::Little => 0.32,
    };
    (1.0 + sensitivity * over).min(2.5)
}

/// Seconds of CPU time for `instructions` of `profile` on `machine` at
/// `f`, using memoizable stalls.
fn cpu_seconds(
    machine: &MachineModel,
    profile: &ComputeProfile,
    stalls: (f64, f64),
    f: Frequency,
    instructions: f64,
) -> f64 {
    instructions * machine.cpi_with_stalls(profile, f, stalls.0, stalls.1) / f.hz()
}

/// Per-job intermediate totals used to assemble the measurement.
struct JobPhases {
    map_wall: f64,
    reduce_wall: f64,
    map_cpu_task: f64,
    map_io_task: f64,
    red_cpu_task: f64,
    red_io_task: f64,
    map_task_s: f64,
    red_task_s: f64,
    n_map: usize,
    n_red: usize,
}

/// Runs the full model for one experiment point, memoizing shared state
/// (stall splits, functional runs) in the process-wide [`SimCache`].
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero nodes or zero data).
pub fn simulate(cfg: &SimConfig) -> Measurement {
    simulate_with(cfg, SimCache::global())
}

/// [`simulate`] against an explicit cache. Passing a fresh
/// [`SimCache::new`] gives a fully uncached evaluation — the reference
/// the cache-consistency property tests compare against.
pub fn simulate_with(cfg: &SimConfig, cache: &SimCache) -> Measurement {
    assert!(cfg.nodes > 0, "need at least one node");
    assert!(cfg.data_per_node_bytes > 0, "need input data");
    let m = &cfg.machine;
    let f = cfg.frequency;
    let ratios = cache.ratios(cfg.app);
    let disk = DiskModel::sata_7200();
    let slots = cfg.slots_per_node();
    let total_slots = slots * cfg.nodes;
    let block = cfg.block_size.bytes();
    let data_total = cfg.data_per_node_bytes * cfg.nodes as u64;

    // Stall splits are frequency-independent: compute once per profile.
    let map_prof = cfg.app.map_profile();
    let red_prof = cfg.app.reduce_profile();
    let map_stalls = cache.stall_split(m, &map_prof);
    let red_stalls = cache.stall_split(m, &red_prof);
    let hadoop_avg = ComputeProfile::hadoop_average();
    let hadoop_stalls = cache.stall_split(m, &hadoop_avg);
    // Task launch (JVM spin-up) penalizes the little core beyond its CPI
    // gap: cold-start code is branchy, serial and cache-hostile.
    let overhead_factor = match m.core.kind {
        hhsim_arch::CoreKind::Big => 1.0,
        hhsim_arch::CoreKind::Little => 1.8,
    };
    let t_task_overhead =
        cpu_seconds(m, &hadoop_avg, hadoop_stalls, f, TASK_OVERHEAD_INSTR) * overhead_factor;

    let mut phases: Vec<JobPhases> = Vec::with_capacity(ratios.jobs.len());
    for job in &ratios.jobs {
        // ------------------------------------------------------------------
        // Map phase of this job.
        // ------------------------------------------------------------------
        let job_input = (data_total as f64 * job.input_fraction).max(1.0);
        let n_map = ((job_input / block as f64).ceil() as usize).max(1);
        let task_input = job_input / n_map as f64;

        // Spill/merge structure at target scale. The materialized volume
        // of any spill or merge is capped by the distinct key space when a
        // combiner runs (duplicates collapse), which makes combining far
        // more effective at production buffer sizes than at MB scale.
        let emitted = task_input * job.map_selectivity;
        let spills = (emitted / cfg.job.sort_buffer_bytes as f64).ceil().max(1.0);
        let merge_passes = cfg.job.merge_passes(spills as usize) as f64;
        let key_cap_task = job.distinct_key_bytes_at(task_input).max(1.0);
        let (materialized, spill_write) = if job.has_combiner {
            let per_spill = (emitted / spills).min(cfg.job.sort_buffer_bytes as f64);
            // One spill sees only `task_input / spills` of input, so its
            // combiner output is capped by *that slice's* key space.
            let key_cap_spill = job.distinct_key_bytes_at(task_input / spills).max(1.0);
            let spill_out = per_spill.min(key_cap_spill);
            // The combiner reruns during the merge: the final task output
            // is again capped by the whole task's key space.
            (emitted.min(key_cap_task), spills * spill_out)
        } else {
            (emitted * job.combine_ratio, emitted * job.combine_ratio)
        };
        let merge_io = (spill_write + materialized) * merge_passes;

        let map_io_bytes = task_input + spill_write + merge_io;
        let t_cpu_map = cpu_seconds(
            m,
            &map_prof,
            map_stalls,
            f,
            task_input * map_prof.instr_per_byte,
        ) + m.core.io_path_seconds(map_io_bytes, f);

        let map_concurrency = slots.min(n_map.div_ceil(cfg.nodes)).max(1) as f64;
        // Concurrent task streams interleave on the node disk: the
        // effective sequential chunk shrinks with concurrency — why small
        // blocks hurt I/O-bound jobs most (§3.1.1).
        let read_chunk = (block / map_concurrency as u64).max(1 << 20);
        let write_chunk = ((32 << 20) / map_concurrency as u64).max(1 << 20);
        let footprint = cfg.data_per_node_bytes as f64
            * job.input_fraction
            * (1.0 + job.map_selectivity.min(1.5));
        let pressure = memory_pressure(m, footprint);
        let mut t_disk_map = (disk.read_seconds(task_input as u64, read_chunk)
            + disk.write_seconds((spill_write + merge_io) as u64, write_chunk))
            * map_concurrency
            * pressure;

        // Shuffle/output volumes.
        let shuffle_total = if job.has_reduce {
            materialized * n_map as f64
        } else {
            0.0
        };
        let output_total = if job.has_combiner {
            (job_input * job.output_selectivity).min(job.distinct_key_bytes_at(job_input) * 2.0)
        } else {
            job_input * job.output_selectivity
        };

        // Map-only jobs write their output from the map task.
        let mut t_cpu_map = t_cpu_map;
        if !job.has_reduce && output_total > 0.0 {
            let out_per_task = output_total / n_map as f64 * OUTPUT_REPLICATION;
            t_disk_map +=
                disk.write_seconds(out_per_task as u64, write_chunk) * map_concurrency * pressure;
            t_cpu_map += m.core.io_path_seconds(out_per_task, f);
        }
        let map_task_s = t_cpu_map + t_disk_map * (1.0 - m.core.io_overlap);
        let map_wall = makespan(
            &TaskSet {
                tasks: n_map,
                task_seconds: map_task_s,
                overhead_seconds: t_task_overhead,
            },
            total_slots,
        );

        // ------------------------------------------------------------------
        // Reduce phase of this job.
        // ------------------------------------------------------------------
        let n_red = if job.has_reduce {
            (total_slots / 2).max(1)
        } else {
            0
        };
        let (red_task_s, t_cpu_red, t_io_red_raw, reduce_wall) = if n_red > 0 {
            let red_input = shuffle_total / n_red as f64 * job.reduce_skew.min(1.5);
            let red_concurrency = slots.min(n_red.div_ceil(cfg.nodes)).max(1) as f64;
            // Cross-node shuffle transfer (the local share stays on-node).
            let cross = red_input * (cfg.nodes as f64 - 1.0) / cfg.nodes as f64;
            let t_net = cross / NET_BYTES_PER_S * red_concurrency;
            // Reduce-side merge passes over n_map segments.
            let passes = {
                let mut segs = n_map;
                let mut p = 0u32;
                while segs > cfg.job.merge_factor {
                    segs = segs.div_ceil(cfg.job.merge_factor);
                    p += 1;
                }
                p as f64
            };
            let merge_bytes = red_input * passes * 2.0;
            let out_bytes = output_total / n_red as f64 * OUTPUT_REPLICATION;
            let io_bytes = red_input + merge_bytes + out_bytes;
            let t_cpu = cpu_seconds(
                m,
                &red_prof,
                red_stalls,
                f,
                red_input * red_prof.instr_per_byte,
            ) + m.core.io_path_seconds(io_bytes, f);
            let red_chunk = ((32 << 20) / red_concurrency as u64).max(1 << 20);
            let t_disk = (disk.write_seconds((merge_bytes + out_bytes) as u64, red_chunk)
                + disk.read_seconds(red_input as u64, red_chunk))
                * red_concurrency
                * pressure;
            let t_io_raw = t_disk + t_net;
            let task_s = t_cpu + t_io_raw * (1.0 - m.core.io_overlap);
            let wall = makespan(
                &TaskSet {
                    tasks: n_red,
                    task_seconds: task_s,
                    overhead_seconds: t_task_overhead,
                },
                total_slots,
            );
            (task_s, t_cpu, t_io_raw, wall)
        } else {
            (0.0, 0.0, 0.0, 0.0)
        };

        phases.push(JobPhases {
            map_wall,
            reduce_wall,
            map_cpu_task: t_cpu_map,
            map_io_task: t_disk_map,
            red_cpu_task: t_cpu_red,
            red_io_task: t_io_red_raw,
            map_task_s,
            red_task_s,
            n_map,
            n_red,
        });
    }

    // ------------------------------------------------------------------
    // Aggregate phases across chained jobs.
    // ------------------------------------------------------------------
    let map_wall: f64 = phases.iter().map(|p| p.map_wall).sum();
    let reduce_wall: f64 = phases.iter().map(|p| p.reduce_wall).sum();
    let n_map_total: usize = phases.iter().map(|p| p.n_map).sum();
    let n_red_total: usize = phases.iter().map(|p| p.n_red).sum();

    // Others: per-job setup/cleanup (fixed protocol time) + serial master
    // bookkeeping (scales with task count and core speed).
    let others_wall = ratios.jobs.len() as f64 * (JOB_SETUP_S + JOB_CLEANUP_S)
        + cpu_seconds(
            m,
            &hadoop_avg,
            hadoop_stalls,
            f,
            MASTER_INSTR_PER_TASK * (n_map_total + n_red_total) as f64 / cfg.nodes as f64,
        );

    // ------------------------------------------------------------------
    // Optional map-phase acceleration (§3.4): only the hotspot map (the
    // chained job with the largest map wall) is offloaded — the paper
    // profiles for the hotspot region and assumes *those* map tasks move
    // to the FPGA; auxiliary jobs' maps stay on the CPU.
    // ------------------------------------------------------------------
    let mut breakdown = PhaseBreakdown::new(map_wall, reduce_wall, others_wall);
    if let Some(acc) = &cfg.accel {
        let hotspot = phases.iter().map(|p| p.map_wall).fold(0.0f64, f64::max);
        let rest_map = map_wall - hotspot;
        let primary = ratios.primary();
        let transfer = (data_total as f64 * (1.0 + primary.map_selectivity.min(1.5)))
            / cfg.nodes as f64
            / slots as f64;
        let hot_accel = hhsim_accel::accelerate(
            &PhaseBreakdown::new(hotspot, 0.0, 0.0),
            transfer as u64,
            acc,
        );
        breakdown = PhaseBreakdown::new(hot_accel.map_s + rest_map, reduce_wall, others_wall);
    }

    // ------------------------------------------------------------------
    // Power and energy. Phase power uses the dominant (first) job's task
    // mix; utilization reflects how many slots the waves actually fill.
    // ------------------------------------------------------------------
    let op = m.operating_point(f);
    let dominant = &phases[0];
    let map_util = (n_map_total as f64 / total_slots as f64).min(1.0);
    let active_map = ((slots as f64 * map_util).round() as usize).max(1);
    let io_frac_map = (dominant.map_io_task / dominant.map_task_s.max(1e-9)).clamp(0.0, 1.0);
    let p_map = m.power.node_power(
        op,
        active_map,
        m.num_cores,
        map_prof.activity,
        mem_intensity(&map_prof),
        io_frac_map,
    );

    let red_util = if n_red_total > 0 {
        (n_red_total as f64 / total_slots as f64).min(1.0)
    } else {
        0.0
    };
    let active_red =
        ((slots as f64 * red_util).round() as usize).max(if n_red_total > 0 { 1 } else { 0 });
    let red_task_s: f64 = phases.iter().map(|p| p.red_task_s).sum();
    let red_io_task: f64 = phases.iter().map(|p| p.red_io_task).sum();
    let io_frac_red = if red_task_s > 0.0 {
        (red_io_task / red_task_s).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let p_red = m.power.node_power(
        op,
        active_red,
        m.num_cores,
        red_prof.activity,
        mem_intensity(&red_prof),
        io_frac_red,
    );
    let p_oth = m.power.node_power(op, 1, m.num_cores, 0.35, 0.2, 0.1);

    let mut trace = PowerTrace::new();
    trace.push(breakdown.map_s, p_map.total());
    trace.push(breakdown.reduce_s, p_red.total());
    trace.push(breakdown.others_s, p_oth.total());
    let reading = PowerMeter::default().measure(&trace);
    let idle = m.power.node_idle_w;

    let map_cost_detail = PhaseCost {
        seconds: breakdown.map_s,
        dynamic_watts: p_map.dynamic(),
        cpu_seconds_per_task: dominant.map_cpu_task,
        io_seconds_per_task: dominant.map_io_task,
    };
    let red_cost_detail = PhaseCost {
        seconds: breakdown.reduce_s,
        dynamic_watts: p_red.dynamic(),
        cpu_seconds_per_task: phases.iter().map(|p| p.red_cpu_task).sum(),
        io_seconds_per_task: red_io_task,
    };
    let oth_cost_detail = PhaseCost {
        seconds: breakdown.others_s,
        dynamic_watts: p_oth.dynamic(),
        cpu_seconds_per_task: 0.0,
        io_seconds_per_task: 0.0,
    };

    let energy_j = reading.dynamic_energy_j(idle) * cfg.nodes as f64;
    let area = slots as f64 * m.area_mm2;
    let cost = CostMetrics::new(energy_j, breakdown.total(), area);
    let map_cost = CostMetrics::new(
        map_cost_detail.energy_j(cfg.nodes),
        breakdown.map_s.max(1e-9),
        area,
    );
    let reduce_cost = CostMetrics::new(
        red_cost_detail.energy_j(cfg.nodes),
        breakdown.reduce_s.max(1e-9),
        area,
    );

    Measurement {
        app: cfg.app,
        machine_name: m.name.clone(),
        breakdown,
        map: map_cost_detail,
        reduce: red_cost_detail,
        others: oth_cost_detail,
        reading,
        energy_j,
        cost,
        map_cost,
        reduce_cost,
        map_ipc: 1.0 / m.cpi_with_stalls(&map_prof, f, map_stalls.0, map_stalls.1),
    }
}

/// DRAM-intensity knob for the power model, derived from the profile's
/// non-resident access fractions.
fn mem_intensity(p: &ComputeProfile) -> f64 {
    ((1.0 - p.mem.hot_fraction) * 1.8 + 0.15).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhsim_arch::presets;

    fn base(app: AppId, m: MachineModel) -> SimConfig {
        SimConfig::new(app, m)
    }

    #[test]
    fn xeon_is_faster_everywhere() {
        for app in AppId::ALL {
            let x = simulate(&base(app, presets::xeon_e5_2420()));
            let a = simulate(&base(app, presets::atom_c2758()));
            assert!(
                x.breakdown.total() < a.breakdown.total(),
                "{app}: xeon {} vs atom {}",
                x.breakdown.total(),
                a.breakdown.total()
            );
        }
    }

    #[test]
    fn atom_draws_much_less_power() {
        for app in AppId::ALL {
            let x = simulate(&base(app, presets::xeon_e5_2420()));
            let a = simulate(&base(app, presets::atom_c2758()));
            assert!(
                x.map.dynamic_watts > 3.0 * a.map.dynamic_watts,
                "{app}: {} vs {}",
                x.map.dynamic_watts,
                a.map.dynamic_watts
            );
        }
    }

    #[test]
    fn frequency_helps_performance() {
        for m in [presets::xeon_e5_2420(), presets::atom_c2758()] {
            let lo = simulate(&base(AppId::WordCount, m.clone()).frequency(Frequency::GHZ_1_2));
            let hi = simulate(&base(AppId::WordCount, m).frequency(Frequency::GHZ_1_8));
            assert!(hi.breakdown.total() < lo.breakdown.total());
        }
    }

    #[test]
    fn block_size_has_an_interior_optimum() {
        // §3.1.1: 32 MB pays task overhead, 512 MB pays spills and lost
        // parallelism; the optimum sits in between.
        let t = |b: BlockSize| {
            simulate(&base(AppId::WordCount, presets::xeon_e5_2420()).block_size(b))
                .breakdown
                .total()
        };
        let t32 = t(BlockSize::MB_32);
        let t128 = t(BlockSize::MB_128);
        let t512 = t(BlockSize::MB_512);
        assert!(
            t32 > t128,
            "tiny blocks pay task overhead ({t32} vs {t128})"
        );
        assert!(
            t512 > t128,
            "huge blocks pay spills/waves ({t512} vs {t128})"
        );
    }

    #[test]
    fn execution_time_scales_with_data() {
        // §3.3: time grows with data, and grows faster on the little core.
        let grow = |m: MachineModel| {
            let one = simulate(&base(AppId::Grep, m.clone()).data_per_node(1 << 30));
            let twenty = simulate(&base(AppId::Grep, m).data_per_node(20 << 30));
            twenty.breakdown.total() / one.breakdown.total()
        };
        let gx = grow(presets::xeon_e5_2420());
        let ga = grow(presets::atom_c2758());
        assert!(gx > 2.5, "20x data must be much slower on Xeon, got {gx}");
        assert!(ga > gx, "Atom must degrade faster ({ga} vs {gx})");
    }

    #[test]
    fn accelerator_shrinks_map_only() {
        let plain = simulate(&base(AppId::WordCount, presets::atom_c2758()));
        let acc = simulate(
            &base(AppId::WordCount, presets::atom_c2758()).accelerator(AccelConfig::fpga(50.0)),
        );
        assert!(acc.breakdown.map_s < plain.breakdown.map_s);
        assert!((acc.breakdown.reduce_s - plain.breakdown.reduce_s).abs() < 1e-9);
    }

    #[test]
    fn more_mappers_speed_up_compute_bound_apps() {
        let m2 = simulate(&base(AppId::NaiveBayes, presets::atom_c2758()).mappers(2));
        let m8 = simulate(&base(AppId::NaiveBayes, presets::atom_c2758()).mappers(8));
        assert!(m8.breakdown.total() < m2.breakdown.total());
        // But power grows with cores.
        assert!(m8.map.dynamic_watts > m2.map.dynamic_watts);
    }

    #[test]
    fn sort_has_no_reduce_time() {
        let st = simulate(&base(AppId::Sort, presets::xeon_e5_2420()));
        assert_eq!(st.breakdown.reduce_s, 0.0);
        assert!(st.breakdown.map_s > 0.0);
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = simulate(&base(AppId::TeraSort, presets::atom_c2758()));
        let b = simulate(&base(AppId::TeraSort, presets::atom_c2758()));
        assert_eq!(a, b);
    }
}
