//! Scale-invariant dataflow ratios extracted from functional runs.
//!
//! The MapReduce engine executes each application for real at MB scale;
//! per-byte ratios (map selectivity, combiner reduction, output volume)
//! are scale-invariant for these workloads, so the timing model can
//! extrapolate them to the paper's 1–20 GB/node runs. Spill and merge
//! *counts* are recomputed analytically at target scale (they depend on
//! absolute buffer sizes), and the distinct-key space — which caps what a
//! combiner can materialize — is extrapolated with a Heaps'-law exponent
//! *measured* from two functional scales.
//!
//! Chained applications (Grep, FP-Growth) keep **per-job** ratios: Grep's
//! second job consumes a tiny match table, while FP-Growth's second job
//! re-reads the full input and does the expensive mining in its reducers.

use hhsim_mapreduce::JobStats;
use hhsim_workloads::{AppId, FunctionalConfig, FunctionalRun};
use serde::{Deserialize, Serialize};

/// Reference functional scale: large enough for stable ratios, small
/// enough to execute in milliseconds.
const REF_INPUT_BYTES: u64 = 768 << 10;
const REF_BLOCK_BYTES: u64 = 96 << 10;
const REF_SORT_BUFFER: u64 = 64 << 10;
const REF_REDUCERS: usize = 4;
const REF_SEED: u64 = 0x5eed;
/// Secondary (smaller) scale used to fit the key-space growth exponent.
const SMALL_INPUT_BYTES: u64 = 192 << 10;

/// Per-byte dataflow ratios of one MapReduce job within an application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRatios {
    /// This job's input bytes relative to the application input (job 0 is
    /// 1.0; Grep's sort job is tiny, FP-Growth's mining job ≈ 1.0).
    pub input_fraction: f64,
    /// Map output bytes per job-input byte (before combining).
    pub map_selectivity: f64,
    /// Materialized/emitted ratio observed functionally (no-combiner jobs:
    /// 1.0).
    pub combine_ratio: f64,
    /// Whether a combiner runs.
    pub has_combiner: bool,
    /// Whether the job has a reduce phase.
    pub has_reduce: bool,
    /// Final output bytes per job-input byte.
    pub output_selectivity: f64,
    /// Reduce input skew (max/mean across reducers).
    pub reduce_skew: f64,
    /// Bytes of one copy of the distinct intermediate key space at the
    /// reference input size.
    pub distinct_key_bytes_ref: f64,
    /// Heaps'-law exponent: distinct keys ∝ input^beta (0 = fixed
    /// vocabulary, 1 = all keys unique).
    pub key_beta: f64,
    /// Reference input bytes the key space was measured at.
    pub ref_input_bytes: f64,
}

impl JobRatios {
    fn from_stats(s: &JobStats, small: Option<&JobStats>, app_input: f64) -> Self {
        let input = s.map_input_bytes.max(1) as f64;
        let rec_bytes = if s.map_materialized_records > 0 {
            s.map_materialized_bytes as f64 / s.map_materialized_records as f64
        } else {
            0.0
        };
        let keys_ref = distinct_keys(s) as f64;
        let key_beta = match small {
            Some(sm) if keys_ref > 0.0 => {
                let keys_small = distinct_keys(sm).max(1) as f64;
                let n_ratio = input / (sm.map_input_bytes.max(1) as f64);
                if n_ratio > 1.0 && keys_ref > keys_small {
                    ((keys_ref / keys_small).ln() / n_ratio.ln()).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            }
            _ => 0.0,
        };
        JobRatios {
            input_fraction: input / app_input,
            map_selectivity: s.map_selectivity(),
            combine_ratio: s.combine_ratio(),
            has_combiner: s.combine_input_records > 0,
            has_reduce: s.reduce_tasks > 0,
            output_selectivity: s.output_bytes as f64 / input,
            reduce_skew: s.reduce_skew(),
            distinct_key_bytes_ref: keys_ref * rec_bytes,
            key_beta,
            ref_input_bytes: input,
        }
    }

    /// Distinct-key-space bytes expected when this job processes
    /// `input_bytes` of data, via the measured Heaps' exponent.
    pub fn distinct_key_bytes_at(&self, input_bytes: f64) -> f64 {
        if self.distinct_key_bytes_ref == 0.0 {
            return 0.0;
        }
        let scale = (input_bytes / self.ref_input_bytes).max(1e-6);
        self.distinct_key_bytes_ref * scale.powf(self.key_beta)
    }
}

/// Distinct intermediate keys observed in a job (reduce groups, or output
/// records for map-only jobs).
fn distinct_keys(s: &JobStats) -> u64 {
    if s.reduce_tasks > 0 {
        s.reduce_input_groups
    } else {
        s.output_records
    }
}

/// All ratios of one application: one entry per chained job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRatios {
    /// Per-job ratios in execution order.
    pub jobs: Vec<JobRatios>,
    /// Input records per input byte (first job).
    pub records_per_byte: f64,
}

impl AppRatios {
    /// Computes ratios from a pair of functional runs (reference + small
    /// scale for the Heaps' fit).
    pub fn from_runs(reference: &FunctionalRun, small: &FunctionalRun) -> Self {
        let app_input = reference.per_job[0].map_input_bytes.max(1) as f64;
        let jobs = reference
            .per_job
            .iter()
            .enumerate()
            .map(|(i, s)| JobRatios::from_stats(s, small.per_job.get(i), app_input))
            .collect();
        AppRatios {
            jobs,
            records_per_byte: reference.stats.map_input_records as f64 / app_input,
        }
    }

    /// The reference-scale functional configuration the ratios are
    /// measured at.
    pub fn reference_config() -> FunctionalConfig {
        FunctionalConfig {
            input_bytes: REF_INPUT_BYTES,
            block_bytes: REF_BLOCK_BYTES,
            sort_buffer_bytes: REF_SORT_BUFFER,
            num_reducers: REF_REDUCERS,
            seed: REF_SEED,
        }
    }

    /// The secondary (smaller) scale used to fit the Heaps' exponent.
    pub fn small_config() -> FunctionalConfig {
        FunctionalConfig {
            input_bytes: SMALL_INPUT_BYTES,
            block_bytes: REF_BLOCK_BYTES / 2,
            sort_buffer_bytes: REF_SORT_BUFFER / 2,
            num_reducers: REF_REDUCERS,
            seed: REF_SEED + 1,
        }
    }

    /// Computes `app`'s ratios from scratch (no memoization): executes
    /// both reference functional runs and derives the ratios.
    pub fn compute(app: AppId) -> AppRatios {
        let reference = app.run_functional(&Self::reference_config());
        let small = app.run_functional(&Self::small_config());
        AppRatios::from_runs(&reference, &small)
    }

    /// Ratios of `app`, memoized process-wide in the shared
    /// [`SimCache`](crate::SimCache) (the functional runs are
    /// deterministic, so every caller sees identical values).
    pub fn of(app: AppId) -> AppRatios {
        crate::SimCache::global().ratios(app)
    }

    /// First (primary) job's ratios.
    pub fn primary(&self) -> &JobRatios {
        &self.jobs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_memoized_and_deterministic() {
        let a = AppRatios::of(AppId::WordCount);
        let b = AppRatios::of(AppId::WordCount);
        assert_eq!(a, b);
    }

    #[test]
    fn class_signatures_show_in_ratios() {
        let wc = AppRatios::of(AppId::WordCount);
        let st = AppRatios::of(AppId::Sort);
        let gp = AppRatios::of(AppId::Grep);
        assert!(wc.primary().map_selectivity > 1.2);
        assert!(wc.primary().has_combiner);
        assert!(!st.primary().has_reduce, "paper: Sort has no reduce phase");
        assert!(!st.primary().has_combiner);
        assert!(st.primary().output_selectivity > 0.8);
        assert_eq!(gp.jobs.len(), 2);
        assert!(
            gp.jobs[1].input_fraction < 0.2,
            "Grep's sort job consumes the small match table: {}",
            gp.jobs[1].input_fraction
        );
    }

    #[test]
    fn fp_growth_second_job_reads_full_input_and_mines_in_reduce() {
        let fp = AppRatios::of(AppId::FpGrowth);
        assert_eq!(fp.jobs.len(), 2);
        assert!(
            fp.jobs[1].input_fraction > 0.8,
            "PFP mining re-reads the transactions: {}",
            fp.jobs[1].input_fraction
        );
        assert!(!fp.jobs[1].has_combiner);
        assert!(fp.jobs[1].has_reduce);
    }

    #[test]
    fn text_apps_have_sublinear_key_growth() {
        let wc = AppRatios::of(AppId::WordCount);
        let beta = wc.primary().key_beta;
        assert!(
            (0.2..=0.95).contains(&beta),
            "zipf text must show Heaps'-law growth, beta={beta}"
        );
        // Extrapolation grows monotonically and sublinearly.
        let k1 = wc.primary().distinct_key_bytes_at(1e9);
        let k10 = wc.primary().distinct_key_bytes_at(1e10);
        assert!(k10 > k1);
        assert!(k10 < 10.0 * k1);
    }

    #[test]
    fn all_apps_have_ratios() {
        for app in AppId::ALL {
            let r = AppRatios::of(app);
            assert!(!r.jobs.is_empty(), "{app}");
            assert!(r.records_per_byte > 0.0, "{app}");
            for j in &r.jobs {
                assert!(j.reduce_skew >= 1.0, "{app}");
                assert!(j.input_fraction > 0.0, "{app}");
            }
        }
    }
}
