//! Parallel, memoized sweep harness for the figure generators.
//!
//! Every artifact in [`crate::figures`] is a grid of independent
//! [`SimConfig`] points. A [`Sweep`] flattens the generator's nested
//! loops into that grid: callers register points with [`Sweep::point`]
//! (receiving a stable index), then [`Sweep::run`] evaluates all points
//! on a scoped worker pool and returns measurements **in registration
//! order** — results land by point index, so the output is byte-identical
//! whatever the worker count or scheduling interleaving. Shared expensive
//! state (stall splits, functional runs) goes through
//! [`SimCache::global`](crate::SimCache::global), whose per-key
//! once-cells guarantee all workers observe identical values.
//!
//! The worker count defaults to the machine's available parallelism and
//! is set process-wide with [`set_jobs`] (the `figures` binary's
//! `--jobs N` flag). Cumulative counters — points evaluated, grids run,
//! busy wall time — are exposed via [`snapshot`] for observability.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::model::{simulate, Measurement, SimConfig};

/// Requested worker count; 0 means "auto" (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);
/// Points evaluated by `run_grid` since process start.
static POINTS: AtomicU64 = AtomicU64::new(0);
/// Grids executed since process start.
static GRIDS: AtomicU64 = AtomicU64::new(0);
/// Nanoseconds spent inside `run_grid` since process start.
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

/// The number of workers the harness would use when jobs is "auto".
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the process-wide worker count (0 restores "auto").
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// The effective worker count used by [`Sweep::run`].
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => available_jobs(),
        n => n,
    }
}

/// Cumulative harness counters (since process start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HarnessSnapshot {
    /// Simulation points evaluated through the harness.
    pub points: u64,
    /// Grids (Sweep::run invocations) executed.
    pub grids: u64,
    /// Wall time spent executing grids.
    pub busy: Duration,
}

impl HarnessSnapshot {
    /// Difference relative to an earlier snapshot.
    pub fn since(&self, earlier: &HarnessSnapshot) -> HarnessSnapshot {
        HarnessSnapshot {
            points: self.points.saturating_sub(earlier.points),
            grids: self.grids.saturating_sub(earlier.grids),
            busy: self.busy.saturating_sub(earlier.busy),
        }
    }
}

/// Reads the cumulative counters.
pub fn snapshot() -> HarnessSnapshot {
    HarnessSnapshot {
        points: POINTS.load(Ordering::Relaxed),
        grids: GRIDS.load(Ordering::Relaxed),
        busy: Duration::from_nanos(BUSY_NANOS.load(Ordering::Relaxed)),
    }
}

/// Evaluates a flat grid of points with the configured worker count.
/// Results are returned in input order regardless of which worker
/// computed each point.
pub fn run_grid(configs: &[SimConfig]) -> Vec<Measurement> {
    run_grid_with(configs, jobs())
}

/// [`run_grid`] with an explicit worker count (tests and benches).
pub fn run_grid_with(configs: &[SimConfig], workers: usize) -> Vec<Measurement> {
    // Operator telemetry only (wall-clock spent sweeping); never feeds a
    // simulated quantity. Mirrors the `wall-clock-in-sim` allow for this
    // file in analysis.toml.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let n = configs.len();
    let out: Vec<Measurement> = if workers <= 1 || n <= 1 {
        configs.iter().map(simulate).collect()
    } else {
        // Work-stealing over a shared index; each point's result lands in
        // its own slot, so output order equals input order by construction.
        let slots: Vec<OnceLock<Measurement>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let m = simulate(&configs[i]);
                    slots[i].set(m).expect("each slot is filled exactly once");
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("worker pool covered every point"))
            .collect()
    };
    POINTS.fetch_add(n as u64, Ordering::Relaxed);
    GRIDS.fetch_add(1, Ordering::Relaxed);
    BUSY_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

/// A grid of simulation points under construction.
///
/// ```
/// use hhsim_core::harness::Sweep;
/// use hhsim_core::{arch::presets, workloads::AppId, SimConfig};
///
/// let mut sweep = Sweep::new();
/// let a = sweep.point(SimConfig::new(AppId::Sort, presets::atom_c2758()));
/// let b = sweep.point(SimConfig::new(AppId::Sort, presets::xeon_e5_2420()));
/// let meas = sweep.run();
/// assert!(meas[a].breakdown.total() > meas[b].breakdown.total());
/// ```
#[derive(Default)]
pub struct Sweep {
    configs: Vec<SimConfig>,
}

impl Sweep {
    /// An empty grid.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Registers one point, returning its index into [`Sweep::run`]'s
    /// result vector.
    pub fn point(&mut self, cfg: SimConfig) -> usize {
        self.configs.push(cfg);
        self.configs.len() - 1
    }

    /// Number of registered points.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Evaluates every point with the configured worker count; result
    /// `i` corresponds to the `i`-th registered point.
    pub fn run(self) -> Vec<Measurement> {
        run_grid(&self.configs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhsim_arch::{presets, Frequency};
    use hhsim_workloads::AppId;

    fn grid() -> Vec<SimConfig> {
        let mut v = Vec::new();
        for m in presets::both() {
            for app in [AppId::WordCount, AppId::Sort, AppId::Grep] {
                for f in Frequency::SWEEP {
                    v.push(SimConfig::new(app, m.clone()).frequency(f));
                }
            }
        }
        v
    }

    #[test]
    fn parallel_equals_serial() {
        let g = grid();
        let serial = run_grid_with(&g, 1);
        let par = run_grid_with(&g, 4);
        assert_eq!(serial, par, "worker count must not affect results");
    }

    #[test]
    fn order_is_registration_order() {
        let mut sweep = Sweep::new();
        let mut expect = Vec::new();
        for cfg in grid() {
            expect.push((cfg.app, cfg.machine.name.clone()));
            sweep.point(cfg);
        }
        let meas = sweep.run();
        assert_eq!(meas.len(), expect.len());
        for (m, (app, machine)) in meas.iter().zip(&expect) {
            assert_eq!(m.app, *app);
            assert_eq!(&m.machine_name, machine);
        }
    }

    #[test]
    fn counters_accumulate() {
        let before = snapshot();
        let g = grid();
        let _ = run_grid_with(&g, 2);
        let delta = snapshot().since(&before);
        assert!(delta.points >= g.len() as u64);
        assert!(delta.grids >= 1);
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_grid_with(&[], 4).is_empty());
        assert!(Sweep::new().is_empty());
    }
}
