//! Parallel, memoized sweep harness for the figure generators.
//!
//! Every artifact in [`crate::figures`] is a grid of independent
//! [`SimConfig`] points. A [`Sweep`] flattens the generator's nested
//! loops into that grid: callers register points with [`Sweep::point`]
//! (receiving a stable index), then [`Sweep::run`] evaluates all points
//! on a scoped worker pool and returns measurements **in registration
//! order** — results land by point index, so the output is byte-identical
//! whatever the worker count or scheduling interleaving. Shared expensive
//! state (stall splits, functional runs) goes through
//! [`SimCache::global`](crate::SimCache::global), whose per-key
//! once-cells guarantee all workers observe identical values.
//!
//! The worker count defaults to the machine's available parallelism and
//! is set process-wide with [`set_jobs`] (the `figures` binary's
//! `--jobs N` flag). Cumulative counters — points evaluated, grids run,
//! busy wall time — are exposed via [`snapshot`] for observability.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use hhsim_faults::{FaultConfig, FaultStats};

use crate::model::{simulate, ClusterPrep, Measurement, SimConfig};
use crate::simcache::SimCache;

/// Requested worker count; 0 means "auto" (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);
/// Points evaluated by `run_grid` since process start.
static POINTS: AtomicU64 = AtomicU64::new(0);
/// Grids executed since process start.
static GRIDS: AtomicU64 = AtomicU64::new(0);
/// Nanoseconds spent inside `run_grid` since process start.
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

/// The number of workers the harness would use when jobs is "auto".
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the process-wide worker count (0 restores "auto").
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// The effective worker count used by [`Sweep::run`].
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => available_jobs(),
        n => n,
    }
}

/// Cumulative harness counters (since process start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HarnessSnapshot {
    /// Simulation points evaluated through the harness.
    pub points: u64,
    /// Grids (Sweep::run invocations) executed.
    pub grids: u64,
    /// Wall time spent executing grids.
    pub busy: Duration,
}

impl HarnessSnapshot {
    /// Difference relative to an earlier snapshot.
    pub fn since(&self, earlier: &HarnessSnapshot) -> HarnessSnapshot {
        HarnessSnapshot {
            points: self.points.saturating_sub(earlier.points),
            grids: self.grids.saturating_sub(earlier.grids),
            busy: self.busy.saturating_sub(earlier.busy),
        }
    }
}

/// Reads the cumulative counters.
pub fn snapshot() -> HarnessSnapshot {
    HarnessSnapshot {
        points: POINTS.load(Ordering::Relaxed),
        grids: GRIDS.load(Ordering::Relaxed),
        busy: Duration::from_nanos(BUSY_NANOS.load(Ordering::Relaxed)),
    }
}

/// Evaluates a flat grid of points with the configured worker count.
/// Results are returned in input order regardless of which worker
/// computed each point.
pub fn run_grid(configs: &[SimConfig]) -> Vec<Measurement> {
    run_grid_with(configs, jobs())
}

/// [`run_grid`] with an explicit worker count (tests and benches).
pub fn run_grid_with(configs: &[SimConfig], workers: usize) -> Vec<Measurement> {
    // Operator telemetry only (wall-clock spent sweeping); never feeds a
    // simulated quantity. Mirrors the `wall-clock-in-sim` allow for this
    // file in analysis.toml.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let n = configs.len();
    let out: Vec<Measurement> = if workers <= 1 || n <= 1 {
        configs.iter().map(simulate).collect()
    } else {
        // Work-stealing over a shared index; each point's result lands in
        // its own slot, so output order equals input order by construction.
        let slots: Vec<OnceLock<Measurement>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let m = simulate(&configs[i]);
                    slots[i].set(m).expect("each slot is filled exactly once");
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("worker pool covered every point"))
            .collect()
    };
    POINTS.fetch_add(n as u64, Ordering::Relaxed);
    GRIDS.fetch_add(1, Ordering::Relaxed);
    BUSY_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

/// A grid of simulation points under construction.
///
/// ```
/// use hhsim_core::harness::Sweep;
/// use hhsim_core::{arch::presets, workloads::AppId, SimConfig};
///
/// let mut sweep = Sweep::new();
/// let a = sweep.point(SimConfig::new(AppId::Sort, presets::atom_c2758()));
/// let b = sweep.point(SimConfig::new(AppId::Sort, presets::xeon_e5_2420()));
/// let meas = sweep.run();
/// assert!(meas[a].breakdown.total() > meas[b].breakdown.total());
/// ```
#[derive(Default)]
pub struct Sweep {
    configs: Vec<SimConfig>,
}

impl Sweep {
    /// An empty grid.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Registers one point, returning its index into [`Sweep::run`]'s
    /// result vector.
    pub fn point(&mut self, cfg: SimConfig) -> usize {
        self.configs.push(cfg);
        self.configs.len() - 1
    }

    /// Number of registered points.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Evaluates every point with the configured worker count; result
    /// `i` corresponds to the `i`-th registered point.
    pub fn run(self) -> Vec<Measurement> {
        run_grid(&self.configs)
    }
}

/// Streaming summary of one scalar across the successful replications:
/// count, mean, extremes and a normal-approximation 95% confidence
/// half-width (`1.96 · s / √n`, 0 when fewer than two samples).
///
/// Built by a serial Welford fold **in seed-index order**, so the exact
/// floating-point result is independent of worker count and batch size.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Aggregate {
    /// Samples folded in.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// 95% confidence half-width around the mean.
    pub ci95: f64,
}

impl Aggregate {
    /// Folds `values` in iteration order (Welford's online algorithm).
    fn fold(values: impl Iterator<Item = f64>) -> Aggregate {
        let mut agg = Aggregate::default();
        let mut m2 = 0.0;
        for v in values {
            agg.n += 1;
            if agg.n == 1 {
                agg.min = v;
                agg.max = v;
            } else {
                agg.min = agg.min.min(v);
                agg.max = agg.max.max(v);
            }
            let d = v - agg.mean;
            agg.mean += d / agg.n as f64;
            m2 += d * (v - agg.mean);
        }
        if agg.n > 1 {
            let var_mean = m2 / (agg.n - 1) as f64 / agg.n as f64;
            agg.ci95 = 1.96 * var_mean.max(0.0).sqrt();
        }
        agg
    }

    /// Mean minus the 95% half-width.
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95
    }

    /// Mean plus the 95% half-width.
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95
    }
}

/// The scalars one replication contributes to the reduction. Timelines
/// and 1 Hz meter views are dropped as soon as the run finishes, so the
/// plan's memory stays O(replications), not O(replications · trace).
#[derive(Debug, Clone)]
struct RepPoint {
    makespan_s: f64,
    energy_j: f64,
    exact_energy_j: f64,
    edp: f64,
    faults: FaultStats,
}

/// Deterministic reduction of a [`ReplicationPlan`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationSummary {
    /// Replications attempted (one per seed).
    pub replications: u64,
    /// Replications whose recovery budget was exhausted ([`PhaseError`]
    /// — excluded from the aggregates below).
    ///
    /// [`PhaseError`]: hhsim_faults::PhaseError
    pub failed_runs: u64,
    /// Job makespan, seconds.
    pub makespan_s: Aggregate,
    /// Metered dynamic energy (streamed 1 Hz view), joules.
    pub energy_j: Aggregate,
    /// Exact event-driven dynamic energy, joules.
    pub exact_energy_j: Aggregate,
    /// Energy-delay product from the **exact** energy, J·s.
    pub edp: Aggregate,
    /// Fault counters summed over the successful replications.
    pub faults: FaultStats,
}

/// Batched Monte Carlo replication of one [`SimConfig`] across fault
/// seeds.
///
/// The seed-independent half of the cluster run (node roster, task
/// pricing, launch overheads, protocol time) is prepared **once** and
/// shared by every worker; each seed then only re-runs the fault
/// sampling, the wave scheduler and the event-driven energy
/// integration. Workers claim contiguous batches of seed indices from a
/// shared cursor and land each result in its own slot, and the final
/// reduction folds slots serially in seed order — so the summary is
/// bit-identical whatever the worker count or batch size.
///
/// Seeds replace the seed of the config's own [`FaultConfig`]; a plan
/// over a fault-free config runs the same deterministic point once per
/// seed (useful as a baseline, every replication identical).
///
/// ```
/// use hhsim_core::figures::fig19_faults;
/// use hhsim_core::harness::ReplicationPlan;
/// use hhsim_core::{arch::presets, workloads::AppId, SimConfig};
///
/// let cfg = SimConfig::new(AppId::WordCount, presets::atom_c2758())
///     .faults(fig19_faults(0.06, true));
/// let summary = ReplicationPlan::new(cfg, 0..8).run();
/// assert_eq!(summary.replications, 8);
/// assert!(summary.makespan_s.ci95 >= 0.0);
/// assert!(summary.edp.lo() <= summary.edp.hi());
/// ```
pub struct ReplicationPlan {
    cfg: SimConfig,
    seeds: Vec<u64>,
    batch: usize,
}

impl ReplicationPlan {
    /// A plan replicating `cfg` once per seed.
    pub fn new(cfg: SimConfig, seeds: impl IntoIterator<Item = u64>) -> Self {
        ReplicationPlan {
            cfg,
            seeds: seeds.into_iter().collect(),
            batch: 8,
        }
    }

    /// Sets how many seeds a worker claims per grab (default 8; clamped
    /// to at least 1). Purely a scheduling knob — results are invariant.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Number of replications the plan will run.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the plan has no seeds.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Runs the plan with the configured worker count against the
    /// process-wide cache.
    pub fn run(&self) -> ReplicationSummary {
        self.run_with(jobs(), SimCache::global())
    }

    /// [`ReplicationPlan::run`] with an explicit worker count and cache
    /// (tests and benches).
    pub fn run_with(&self, workers: usize, cache: &SimCache) -> ReplicationSummary {
        // Operator telemetry only — see the note in `run_grid_with`.
        #[allow(clippy::disallowed_methods)]
        let started = Instant::now();
        let prep = ClusterPrep::new(&self.cfg, cache);
        let base = self.cfg.faults.filter(FaultConfig::active);
        let eval = |seed: u64| -> Option<RepPoint> {
            let seeded = base.map(|f| f.seed(seed));
            let (m, _timeline) = prep.run_seeded(seeded.as_ref(), cache).ok()?;
            let makespan_s = m.breakdown.total();
            Some(RepPoint {
                makespan_s,
                energy_j: m.energy_j,
                exact_energy_j: m.exact_energy_j,
                edp: m.exact_energy_j * makespan_s,
                faults: m.faults,
            })
        };

        let n = self.seeds.len();
        let points: Vec<Option<RepPoint>> = if workers <= 1 || n <= 1 {
            self.seeds.iter().map(|&s| eval(s)).collect()
        } else {
            // Batched work stealing: each grab claims `batch` contiguous
            // seed indices; each result lands in its own slot, so the
            // reduction below sees seed order regardless of scheduling.
            let slots: Vec<OnceLock<Option<RepPoint>>> = (0..n).map(|_| OnceLock::new()).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers.min(n) {
                    scope.spawn(|| loop {
                        let start = next.fetch_add(self.batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + self.batch).min(n);
                        for i in start..end {
                            let seed = self.seeds.get(i).copied();
                            let point = seed.and_then(&eval);
                            if let Some(slot) = slots.get(i) {
                                let _ = slot.set(point);
                            }
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().flatten())
                .collect()
        };

        let ok: Vec<&RepPoint> = points.iter().flatten().collect();
        let mut faults = FaultStats::default();
        for p in &ok {
            faults.absorb(&p.faults);
        }
        let summary = ReplicationSummary {
            replications: n as u64,
            failed_runs: (n - ok.len()) as u64,
            makespan_s: Aggregate::fold(ok.iter().map(|p| p.makespan_s)),
            energy_j: Aggregate::fold(ok.iter().map(|p| p.energy_j)),
            exact_energy_j: Aggregate::fold(ok.iter().map(|p| p.exact_energy_j)),
            edp: Aggregate::fold(ok.iter().map(|p| p.edp)),
            faults,
        };
        POINTS.fetch_add(n as u64, Ordering::Relaxed);
        GRIDS.fetch_add(1, Ordering::Relaxed);
        BUSY_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhsim_arch::{presets, Frequency};
    use hhsim_workloads::AppId;

    fn grid() -> Vec<SimConfig> {
        let mut v = Vec::new();
        for m in presets::both() {
            for app in [AppId::WordCount, AppId::Sort, AppId::Grep] {
                for f in Frequency::SWEEP {
                    v.push(SimConfig::new(app, m.clone()).frequency(f));
                }
            }
        }
        v
    }

    #[test]
    fn parallel_equals_serial() {
        let g = grid();
        let serial = run_grid_with(&g, 1);
        let par = run_grid_with(&g, 4);
        assert_eq!(serial, par, "worker count must not affect results");
    }

    #[test]
    fn order_is_registration_order() {
        let mut sweep = Sweep::new();
        let mut expect = Vec::new();
        for cfg in grid() {
            expect.push((cfg.app, cfg.machine.name.clone()));
            sweep.point(cfg);
        }
        let meas = sweep.run();
        assert_eq!(meas.len(), expect.len());
        for (m, (app, machine)) in meas.iter().zip(&expect) {
            assert_eq!(m.app, *app);
            assert_eq!(&m.machine_name, machine);
        }
    }

    #[test]
    fn counters_accumulate() {
        let before = snapshot();
        let g = grid();
        let _ = run_grid_with(&g, 2);
        let delta = snapshot().since(&before);
        assert!(delta.points >= g.len() as u64);
        assert!(delta.grids >= 1);
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_grid_with(&[], 4).is_empty());
        assert!(Sweep::new().is_empty());
    }

    #[test]
    fn aggregate_fold_matches_closed_form() {
        let agg = Aggregate::fold([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter());
        assert_eq!(agg.n, 8);
        assert!((agg.mean - 5.0).abs() < 1e-12);
        assert_eq!(agg.min, 2.0);
        assert_eq!(agg.max, 9.0);
        // Sample stddev of this set is sqrt(32/7); ci95 = 1.96 * s / sqrt(8).
        let expect = 1.96 * (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt();
        assert!((agg.ci95 - expect).abs() < 1e-12);
        assert!(agg.lo() < agg.mean && agg.mean < agg.hi());
        let one = Aggregate::fold(std::iter::once(3.0));
        assert_eq!(
            (one.n, one.mean, one.min, one.max, one.ci95),
            (1, 3.0, 3.0, 3.0, 0.0)
        );
        assert_eq!(Aggregate::fold(std::iter::empty()), Aggregate::default());
    }

    fn faulty_cfg() -> SimConfig {
        SimConfig::new(AppId::WordCount, presets::atom_c2758())
            .faults(crate::figures::fig19_faults(0.08, true))
    }

    #[test]
    fn replication_invariant_to_workers_and_batch() {
        let cache = SimCache::new();
        let plan = ReplicationPlan::new(faulty_cfg(), 0..12);
        let serial = plan.run_with(1, &cache);
        for (workers, batch) in [(4, 1), (4, 8), (2, 3), (3, 64)] {
            let par = ReplicationPlan::new(faulty_cfg(), 0..12)
                .batch(batch)
                .run_with(workers, &cache);
            assert_eq!(serial, par, "workers={workers} batch={batch}");
        }
        assert_eq!(serial.replications, 12);
        assert!(serial.makespan_s.n + serial.failed_runs == 12);
        assert!(serial.makespan_s.min > 0.0);
        assert!(serial.edp.mean > 0.0);
    }

    #[test]
    fn faultfree_plan_has_zero_spread() {
        let cache = SimCache::new();
        let cfg = SimConfig::new(AppId::Sort, presets::xeon_e5_2420());
        let s = ReplicationPlan::new(cfg, [1, 2, 3, 4]).run_with(2, &cache);
        assert_eq!(s.failed_runs, 0);
        assert_eq!(s.makespan_s.min, s.makespan_s.max);
        assert_eq!(s.makespan_s.ci95, 0.0);
        assert_eq!(s.faults, hhsim_faults::FaultStats::default());
    }

    #[test]
    fn faults_vary_per_seed_and_accumulate() {
        let cache = SimCache::new();
        let s = ReplicationPlan::new(faulty_cfg(), 0..16).run_with(2, &cache);
        assert!(
            s.faults.failed_attempts > 0,
            "rate 0.08 must inject failures"
        );
        assert!(
            s.makespan_s.max > s.makespan_s.min,
            "seeds must produce distinct makespans"
        );
        assert!(s.makespan_s.ci95 > 0.0);
        // Exact and metered energies agree to within the sampling bound.
        assert!(s.exact_energy_j.mean > 0.0);
        let rel = (s.exact_energy_j.mean - s.energy_j.mean).abs() / s.exact_energy_j.mean;
        assert!(rel < 0.05, "exact vs metered drift {rel}");
    }
}
