//! Tabular figure data and CSV emission.

use serde::{Deserialize, Serialize};

/// One data point of a figure: a named series, an x label and a value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Series name (e.g. "Atom/WC" or "Xeon EDP").
    pub series: String,
    /// X coordinate label (e.g. "256MB@1.6GHz" or "10GB").
    pub x: String,
    /// Measured value.
    pub value: f64,
}

/// A figure or table as an ordered list of rows, ready for CSV.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FigureData {
    /// Identifier ("fig3", "table3", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column label of `value`.
    pub value_label: String,
    /// The data.
    pub rows: Vec<Row>,
}

impl FigureData {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, value_label: &str) -> Self {
        FigureData {
            id: id.to_string(),
            title: title.to_string(),
            value_label: value_label.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, series: impl Into<String>, x: impl Into<String>, value: f64) {
        self.rows.push(Row {
            series: series.into(),
            x: x.into(),
            value,
        });
    }

    /// All rows of one series, in insertion order.
    pub fn series(&self, name: &str) -> Vec<&Row> {
        self.rows.iter().filter(|r| r.series == name).collect()
    }

    /// Value at (series, x), if present.
    pub fn value(&self, series: &str, x: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.series == series && r.x == x)
            .map(|r| r.value)
    }

    /// Renders as CSV (`series,x,value` with a header).
    pub fn to_csv(&self) -> String {
        let mut out = format!(
            "# {} — {}\nseries,x,{}\n",
            self.id, self.title, self.value_label
        );
        for r in &self.rows {
            out.push_str(&format!("{},{},{:.6}\n", r.series, r.x, r.value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut f = FigureData::new("figX", "test", "seconds");
        f.push("Atom", "32MB", 10.0);
        f.push("Atom", "64MB", 8.0);
        f.push("Xeon", "32MB", 5.0);
        assert_eq!(f.series("Atom").len(), 2);
        assert_eq!(f.value("Xeon", "32MB"), Some(5.0));
        assert_eq!(f.value("Xeon", "64MB"), None);
    }

    #[test]
    fn csv_shape() {
        let mut f = FigureData::new("fig1", "IPC", "ipc");
        f.push("Xeon", "SPEC", 1.5);
        let csv = f.to_csv();
        assert!(csv.starts_with("# fig1"));
        assert!(csv.contains("series,x,ipc"));
        assert!(csv.contains("Xeon,SPEC,1.5"));
        assert_eq!(csv.lines().count(), 3);
    }
}
