//! Calibration dump: paper targets vs model output at defaults.
use hhsim_core::arch::{presets, Frequency};
use hhsim_core::hdfs::BlockSize;
use hhsim_core::workloads::AppId;
use hhsim_core::{simulate, SimConfig};

fn main() {
    println!(
        "{:<4} {:>9} {:>9} {:>6} | {:>8} {:>8} {:>6} | map/red/oth X | map/red/oth A | W_x W_a",
        "app", "t_xeon", "t_atom", "A/X", "edp_x", "edp_a", "X/A"
    );
    for app in AppId::ALL {
        let x = simulate(&SimConfig::new(app, presets::xeon_e5_2420()));
        let a = simulate(&SimConfig::new(app, presets::atom_c2758()));
        println!("{:<4} {:>9.1} {:>9.1} {:>6.2} | {:>8.2e} {:>8.2e} {:>6.2} | {:>4.0}/{:>4.0}/{:>3.0} | {:>4.0}/{:>4.0}/{:>3.0} | {:>4.0} {:>4.0}",
            app.short_name(),
            x.breakdown.total(), a.breakdown.total(),
            a.breakdown.total()/x.breakdown.total(),
            x.cost.edp(), a.cost.edp(), x.cost.edp()/a.cost.edp(),
            x.breakdown.map_s, x.breakdown.reduce_s, x.breakdown.others_s,
            a.breakdown.map_s, a.breakdown.reduce_s, a.breakdown.others_s,
            x.reading.average_watts, a.reading.average_watts);
    }
    for app in [AppId::Sort, AppId::WordCount, AppId::NaiveBayes] {
        for m in [presets::xeon_e5_2420(), presets::atom_c2758()] {
            let r = simulate(&SimConfig::new(app, m.clone()));
            println!("split {} {}: map cpu/task {:.1}s io/task(raw) {:.1}s  red cpu {:.1} io {:.1}  P_map_dyn {:.0}W",
                app.short_name(), m.name, r.map.cpu_seconds_per_task, r.map.io_seconds_per_task,
                r.reduce.cpu_seconds_per_task, r.reduce.io_seconds_per_task, r.map.dynamic_watts);
        }
    }
    // frequency sensitivity on WC & ST
    for app in [AppId::WordCount, AppId::Sort] {
        for m in [presets::xeon_e5_2420(), presets::atom_c2758()] {
            let lo = simulate(&SimConfig::new(app, m.clone()).frequency(Frequency::GHZ_1_2));
            let hi = simulate(&SimConfig::new(app, m.clone()).frequency(Frequency::GHZ_1_8));
            println!(
                "freq sens {} {}: 1.2->1.8 improves {:.1}%",
                app.short_name(),
                m.name,
                (1.0 - hi.breakdown.total() / lo.breakdown.total()) * 100.0
            );
        }
    }
    // block size sensitivity WC on Xeon
    for m in [presets::xeon_e5_2420(), presets::atom_c2758()] {
        for app in [AppId::WordCount, AppId::Sort] {
            let t: Vec<f64> = BlockSize::SWEEP
                .iter()
                .map(|b| {
                    simulate(&SimConfig::new(app, m.clone()).block_size(*b))
                        .breakdown
                        .total()
                })
                .collect();
            println!(
                "block sweep {} {}: {:?}",
                app.short_name(),
                m.name,
                t.iter()
                    .map(|v| (v * 10.0).round() / 10.0)
                    .collect::<Vec<_>>()
            );
        }
    }
    // data size
    for app in [AppId::Grep, AppId::WordCount] {
        for m in [presets::xeon_e5_2420(), presets::atom_c2758()] {
            let t1 = simulate(&SimConfig::new(app, m.clone()).data_per_node(1 << 30))
                .breakdown
                .total();
            let t20 = simulate(&SimConfig::new(app, m.clone()).data_per_node(20 << 30))
                .breakdown
                .total();
            println!(
                "datasize {} {}: 1GB {:.0}s 20GB {:.0}s ratio {:.2}",
                app.short_name(),
                m.name,
                t1,
                t20,
                t20 / t1
            );
        }
    }
}
